//! Analytic kernel cost model.

use crate::profile::DeviceProfile;
use dcf_tensor::Shape;
use std::time::Duration;

/// Abstract cost of one kernel: arithmetic work and memory traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved through device memory.
    pub bytes: f64,
}

impl OpCost {
    /// Zero cost (control-flow and bookkeeping operations).
    pub const FREE: OpCost = OpCost { flops: 0.0, bytes: 0.0 };
}

/// Maps operations to modeled durations on a device profile.
///
/// Dimensions are first multiplied by the profile's `shape_scale`, then the
/// duration is the roofline estimate
/// `max(flops / device_flops, bytes / mem_bandwidth) + launch_overhead`,
/// scaled by the profile's `time_scale`.
#[derive(Clone, Debug)]
pub struct CostModel {
    profile: DeviceProfile,
}

impl CostModel {
    /// Creates a cost model for the given profile.
    pub fn new(profile: DeviceProfile) -> CostModel {
        CostModel { profile }
    }

    /// Returns the profile this model was built from.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Number of elements of `shape` after applying the shape scale.
    ///
    /// Only the trailing two (feature) dimensions are scaled: a rank-3
    /// `[T, batch, hidden]` tensor models `[T, batch*s, hidden*s]` — the
    /// sequence axis is already at its nominal length, while batch and
    /// feature extents are computed reduced and modeled full-size.
    pub fn scaled_elements(&self, shape: &Shape) -> f64 {
        let s = self.profile.shape_scale as f64;
        let rank = shape.rank();
        shape
            .dims()
            .iter()
            .enumerate()
            .map(|(i, &d)| if i + 2 >= rank { d as f64 * s } else { d as f64 })
            .product::<f64>()
            .max(1.0)
    }

    /// Modeled byte size of a tensor of `shape` with `elem_size`-byte
    /// elements (used by the allocator).
    pub fn scaled_bytes(&self, shape: &Shape, elem_size: usize) -> usize {
        (self.scaled_elements(shape) * elem_size as f64) as usize
    }

    /// Cost of a matrix multiplication `[m, k] x [k, n]`.
    pub fn matmul_cost(&self, m: usize, k: usize, n: usize) -> OpCost {
        let s = self.profile.shape_scale as f64;
        let (m, k, n) = (m as f64 * s, k as f64 * s, n as f64 * s);
        OpCost { flops: 2.0 * m * k * n, bytes: 4.0 * (m * k + k * n + m * n) }
    }

    /// Cost of an elementwise kernel over the given output shape with
    /// `arity` operands.
    pub fn elementwise_cost(&self, out: &Shape, arity: usize) -> OpCost {
        let n = self.scaled_elements(out);
        OpCost { flops: n, bytes: 4.0 * n * (arity as f64 + 1.0) }
    }

    /// Cost of a reduction over `input` elements.
    pub fn reduction_cost(&self, input: &Shape) -> OpCost {
        let n = self.scaled_elements(input);
        OpCost { flops: n, bytes: 4.0 * n }
    }

    /// Converts an abstract cost to a modeled duration on this device.
    pub fn duration(&self, cost: OpCost) -> Duration {
        if self.profile.time_scale == 0.0 {
            return Duration::ZERO;
        }
        let compute = cost.flops / self.profile.flops;
        let memory = cost.bytes / self.profile.mem_bandwidth;
        let secs = compute.max(memory) * self.profile.time_scale;
        let base = Duration::from_secs_f64(secs);
        if cost.flops == 0.0 && cost.bytes == 0.0 {
            Duration::ZERO
        } else {
            base + mul_duration(self.profile.launch_overhead, self.profile.time_scale)
        }
    }

    /// Modeled duration of a host-device copy of `bytes` (at modeled size).
    pub fn copy_duration(&self, bytes: usize) -> Duration {
        if self.profile.time_scale == 0.0 {
            return Duration::ZERO;
        }
        let secs = bytes as f64 / self.profile.copy_bandwidth * self.profile.time_scale;
        Duration::from_secs_f64(secs)
            + mul_duration(self.profile.launch_overhead, self.profile.time_scale)
    }
}

fn mul_duration(d: Duration, f: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_scales_cubically_with_shape_scale() {
        let m1 = CostModel::new(DeviceProfile::gpu_k40());
        let m32 = CostModel::new(DeviceProfile::gpu_k40().with_shape_scale(32));
        let c1 = m1.matmul_cost(32, 32, 32);
        let c32 = m32.matmul_cost(32, 32, 32);
        assert!((c32.flops / c1.flops - 32.0f64.powi(3)).abs() < 1e-6);
        // A scaled 32^3 matmul is modeled as 1024^3: ~2.1 GFLOP.
        assert!((c32.flops - 2.0 * 1024.0f64.powi(3)).abs() < 1.0);
    }

    #[test]
    fn durations_reflect_device_speed() {
        let k40 = CostModel::new(DeviceProfile::gpu_k40());
        let v100 = CostModel::new(DeviceProfile::gpu_v100());
        let cost = k40.matmul_cost(1024, 1024, 1024);
        assert!(k40.duration(cost) > v100.duration(cost));
        // 1024^3 matmul on K40: 2.1 GFLOP / 4.29 TFLOPs ~ 0.5 ms.
        let d = k40.duration(cost);
        assert!(d > Duration::from_micros(400) && d < Duration::from_micros(700), "{d:?}");
    }

    #[test]
    fn zero_time_scale_disables_waiting() {
        let m = CostModel::new(DeviceProfile::gpu_k40().with_time_scale(0.0));
        assert_eq!(m.duration(m.matmul_cost(4096, 4096, 4096)), Duration::ZERO);
        assert_eq!(m.copy_duration(1 << 30), Duration::ZERO);
    }

    #[test]
    fn free_cost_has_no_overhead() {
        let m = CostModel::new(DeviceProfile::gpu_k40());
        assert_eq!(m.duration(OpCost::FREE), Duration::ZERO);
    }

    #[test]
    fn scaled_bytes_accounts_modeled_footprint() {
        let m = CostModel::new(DeviceProfile::gpu_k40().with_shape_scale(32));
        // A 16x16 f32 tensor models a 512x512 one: 1 MiB.
        let b = m.scaled_bytes(&Shape::from([16, 16]), 4);
        assert_eq!(b, 512 * 512 * 4);
        // Scalars are unaffected by scaling.
        assert_eq!(m.scaled_bytes(&Shape::scalar(), 8), 8);
    }

    #[test]
    fn copy_duration_is_bandwidth_bound() {
        let m = CostModel::new(DeviceProfile::gpu_k40());
        // 12 GB/s -> 1 MiB in ~87 µs (plus launch overhead).
        let d = m.copy_duration(1 << 20);
        assert!(d > Duration::from_micros(80) && d < Duration::from_micros(120), "{d:?}");
    }
}
