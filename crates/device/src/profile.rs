//! Device performance and capacity profiles.

use std::time::Duration;

/// Static characteristics of a simulated device.
///
/// The GPU profiles are calibrated to the paper's hardware at the level the
/// evaluation depends on: relative compute rate (V100 ≈ 3–4× K40 for dense
/// kernels), PCIe copy bandwidth, per-kernel launch overhead, and device
/// memory capacity.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// `true` for accelerator (GPU-like) devices with separate streams.
    pub is_gpu: bool,
    /// Effective dense-compute rate in FLOP/s.
    pub flops: f64,
    /// Device memory bandwidth in bytes/s (bounds elementwise kernels).
    pub mem_bandwidth: f64,
    /// Host-device copy bandwidth in bytes/s (PCIe for GPUs).
    pub copy_bandwidth: f64,
    /// Fixed per-kernel launch overhead.
    pub launch_overhead: Duration,
    /// Device memory capacity in bytes (modeled).
    pub memory_capacity: usize,
    /// All dimensions are multiplied by this factor for cost and memory
    /// modeling (see crate docs). `1` means shapes are taken at face value.
    pub shape_scale: usize,
    /// Additional multiplier applied to modeled kernel durations. Lets
    /// experiments shrink modeled time uniformly (e.g. `0.1` runs a sweep
    /// 10× faster without changing any ratio). Set to `0.0` to disable
    /// modeled waiting entirely (pure functional execution, used by
    /// correctness tests).
    pub time_scale: f64,
}

impl DeviceProfile {
    /// A host CPU profile: modest compute rate, abundant memory, no
    /// modeled launch overhead or waiting by default.
    pub fn cpu() -> DeviceProfile {
        DeviceProfile {
            name: "cpu",
            is_gpu: false,
            flops: 5.0e10,
            mem_bandwidth: 2.0e10,
            copy_bandwidth: 2.0e10,
            launch_overhead: Duration::ZERO,
            memory_capacity: 256 << 30,
            shape_scale: 1,
            time_scale: 0.0,
        }
    }

    /// An NVIDIA Tesla K40-like profile (the paper's cluster GPU):
    /// ~4.3 TFLOP/s single precision, 288 GB/s memory bandwidth, PCIe 3
    /// x16 (~12 GB/s effective), 12 GB memory, ~5 µs launch overhead.
    pub fn gpu_k40() -> DeviceProfile {
        DeviceProfile {
            name: "k40",
            is_gpu: true,
            flops: 4.29e12,
            mem_bandwidth: 2.88e11,
            copy_bandwidth: 1.2e10,
            launch_overhead: Duration::from_micros(5),
            memory_capacity: 12 << 30,
            shape_scale: 1,
            time_scale: 1.0,
        }
    }

    /// An NVIDIA V100-like profile (the paper's DGX-1 GPU): ~15.7 TFLOP/s,
    /// 900 GB/s memory bandwidth, NVLink-class copies, 16 GB memory.
    pub fn gpu_v100() -> DeviceProfile {
        DeviceProfile {
            name: "v100",
            is_gpu: true,
            flops: 1.57e13,
            mem_bandwidth: 9.0e11,
            copy_bandwidth: 4.0e10,
            launch_overhead: Duration::from_micros(4),
            memory_capacity: 16 << 30,
            shape_scale: 1,
            time_scale: 1.0,
        }
    }

    /// Returns the profile with a different shape scale.
    pub fn with_shape_scale(mut self, scale: usize) -> DeviceProfile {
        self.shape_scale = scale;
        self
    }

    /// Returns the profile with a different time scale.
    pub fn with_time_scale(mut self, scale: f64) -> DeviceProfile {
        self.time_scale = scale;
        self
    }

    /// Returns the profile with a different modeled memory capacity.
    pub fn with_memory_capacity(mut self, bytes: usize) -> DeviceProfile {
        self.memory_capacity = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_profiles_ordered() {
        let k40 = DeviceProfile::gpu_k40();
        let v100 = DeviceProfile::gpu_v100();
        assert!(v100.flops > 3.0 * k40.flops);
        assert!(k40.is_gpu && v100.is_gpu);
        assert!(!DeviceProfile::cpu().is_gpu);
    }

    #[test]
    fn builders_compose() {
        let p = DeviceProfile::gpu_k40()
            .with_shape_scale(32)
            .with_time_scale(0.5)
            .with_memory_capacity(1 << 30);
        assert_eq!(p.shape_scale, 32);
        assert_eq!(p.time_scale, 0.5);
        assert_eq!(p.memory_capacity, 1 << 30);
    }
}
