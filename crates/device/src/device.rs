//! The simulated device: profile + allocator + streams + tracer.

use crate::cost::CostModel;
use crate::memory::TrackingAllocator;
use crate::profile::DeviceProfile;
use crate::stats::DeviceCollector;
use crate::stream::{Event, Stream};
use crate::timeline::Tracer;
use dcf_sync::Mutex;
use dcf_tensor::Tensor;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Index of a device within a run (assigned by the runtime).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

/// Which stream of a device a kernel targets (§5.3 uses three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// Compute kernels.
    Compute,
    /// Host-to-device copies (swap-in).
    H2D,
    /// Device-to-host copies (swap-out).
    D2H,
}

/// Result produced by a kernel's computation closure.
pub type KernelOutput = Result<Vec<Tensor>, String>;

/// A kernel submission: name, modeled duration, dependencies, and the real
/// computation to perform.
pub struct Kernel {
    /// Name recorded in the timeline.
    pub name: String,
    /// Modeled duration on this device.
    pub modeled: Duration,
    /// Events that must be signaled before the kernel starts.
    pub wait_for: Vec<Event>,
    /// The actual value computation.
    pub compute: Box<dyn FnOnce() -> KernelOutput + Send>,
    /// Optional run-abort flag. While unset the kernel waits out its full
    /// modeled duration; once set the remaining modeled time is skipped
    /// (the computation still runs and the completion event still fires).
    /// Executors thread their run's cancellation state through here so an
    /// aborted run's streams quiesce in microseconds, not modeled seconds.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Optional step-stats handle of the submitting run. When set, the
    /// stream thread records this kernel's timing into it. Routed per
    /// kernel rather than installed on the device so concurrent traced
    /// steps never observe each other's kernels.
    pub collector: Option<DeviceCollector>,
}

/// A simulated device.
///
/// Owns three FIFO stream threads (compute / H2D / D2H). Kernels submitted
/// to a stream run in order; each computes its real output value and then
/// waits out its modeled duration, so concurrently busy streams overlap in
/// wall-clock time exactly as the modeled hardware's would.
pub struct Device {
    id: DeviceId,
    name: String,
    machine: usize,
    cost: CostModel,
    allocator: TrackingAllocator,
    tracer: Tracer,
    compute: Stream,
    h2d: Stream,
    d2h: Stream,
}

impl Device {
    /// Creates a device with the given profile on the given machine.
    ///
    /// `tracer` is shared across devices so one timeline covers the run.
    pub fn new(
        id: DeviceId,
        machine: usize,
        profile: DeviceProfile,
        tracer: Tracer,
    ) -> Arc<Device> {
        let name = format!("/machine:{}/{}:{}", machine, profile.name, id.0);
        let allocator = TrackingAllocator::new(name.clone(), profile.memory_capacity);
        let cost = CostModel::new(profile);
        Arc::new(Device {
            id,
            name: name.clone(),
            machine,
            cost,
            allocator,
            tracer: tracer.clone(),
            compute: Stream::spawn(format!("{name}/compute"), tracer.clone()),
            h2d: Stream::spawn(format!("{name}/h2d"), tracer.clone()),
            d2h: Stream::spawn(format!("{name}/d2h"), tracer),
        })
    }

    /// Device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Diagnostic name, e.g. `"/machine:0/k40:1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The machine (failure/communication domain) hosting this device.
    pub fn machine(&self) -> usize {
        self.machine
    }

    /// The device's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The device's memory allocator.
    pub fn allocator(&self) -> &TrackingAllocator {
        &self.allocator
    }

    /// The shared timeline tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Submits a kernel asynchronously; the returned event is signaled when
    /// the kernel (computation + modeled duration) completes, and the output
    /// slot is filled just before that.
    pub fn submit(
        &self,
        stream: StreamKind,
        kernel: Kernel,
    ) -> (Event, Arc<Mutex<Option<KernelOutput>>>) {
        let slot: Arc<Mutex<Option<KernelOutput>>> = Arc::new(Mutex::new(None));
        let slot2 = slot.clone();
        let compute = kernel.compute;
        let work = Box::new(move || {
            *slot2.lock() = Some(compute());
        });
        let s = self.stream(stream);
        let ev = s.submit(
            kernel.name,
            kernel.modeled,
            kernel.wait_for,
            work,
            None,
            kernel.cancel,
            kernel.collector,
        );
        (ev, slot)
    }

    /// Submits a kernel and invokes `on_done` with the output once the
    /// kernel fully completes (computation + modeled duration).
    ///
    /// This is the executor's path: the submitting thread never blocks, and
    /// the callback re-enters the executor to propagate the results.
    /// Returns the completion event (useful for cross-stream dependencies).
    pub fn submit_with_callback(
        &self,
        stream: StreamKind,
        kernel: Kernel,
        on_done: Box<dyn FnOnce(KernelOutput) + Send>,
    ) -> Event {
        let slot: Arc<Mutex<Option<KernelOutput>>> = Arc::new(Mutex::new(None));
        let slot2 = slot.clone();
        let compute = kernel.compute;
        let work = Box::new(move || {
            *slot2.lock() = Some(compute());
        });
        let done = Box::new(move || {
            let out = slot.lock().take().unwrap_or_else(|| Err("kernel produced no output".into()));
            on_done(out);
        });
        self.stream(stream).submit(
            kernel.name,
            kernel.modeled,
            kernel.wait_for,
            work,
            Some(done),
            kernel.cancel,
            kernel.collector,
        )
    }

    fn stream(&self, kind: StreamKind) -> &Stream {
        match kind {
            StreamKind::Compute => &self.compute,
            StreamKind::H2D => &self.h2d,
            StreamKind::D2H => &self.d2h,
        }
    }

    /// Runs a kernel to completion on a stream and returns its output.
    pub fn run(&self, stream: StreamKind, kernel: Kernel) -> KernelOutput {
        let (ev, slot) = self.submit(stream, kernel);
        ev.wait();
        let out = slot.lock().take();
        out.unwrap_or_else(|| Err("kernel produced no output".into()))
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("machine", &self.machine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn cpu_device() -> Arc<Device> {
        Device::new(DeviceId(0), 0, DeviceProfile::cpu(), Tracer::new())
    }

    #[test]
    fn run_returns_computed_value() {
        let d = cpu_device();
        let out = d
            .run(
                StreamKind::Compute,
                Kernel {
                    name: "add".into(),
                    modeled: Duration::ZERO,
                    wait_for: vec![],
                    compute: Box::new(|| Ok(vec![Tensor::scalar_f32(42.0)])),
                    cancel: None,
                    collector: None,
                },
            )
            .unwrap();
        assert_eq!(out[0].scalar_as_f32().unwrap(), 42.0);
    }

    #[test]
    fn kernel_errors_propagate() {
        let d = cpu_device();
        let out = d.run(
            StreamKind::Compute,
            Kernel {
                name: "bad".into(),
                modeled: Duration::ZERO,
                wait_for: vec![],
                compute: Box::new(|| Err("boom".into())),
                cancel: None,
                collector: None,
            },
        );
        assert_eq!(out.unwrap_err(), "boom");
    }

    #[test]
    fn compute_and_copy_streams_overlap() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let d = Device::new(DeviceId(0), 0, DeviceProfile::gpu_k40(), tracer);
        let t0 = Instant::now();
        let (e1, _) = d.submit(
            StreamKind::Compute,
            Kernel {
                name: "compute".into(),
                modeled: Duration::from_millis(30),
                wait_for: vec![],
                compute: Box::new(|| Ok(vec![])),
                cancel: None,
                collector: None,
            },
        );
        let (e2, _) = d.submit(
            StreamKind::D2H,
            Kernel {
                name: "copy".into(),
                modeled: Duration::from_millis(30),
                wait_for: vec![],
                compute: Box::new(|| Ok(vec![])),
                cancel: None,
                collector: None,
            },
        );
        e1.wait();
        e2.wait();
        let wall = t0.elapsed();
        // Both 30 ms kernels ran concurrently: well under 60 ms total.
        assert!(wall < Duration::from_millis(55), "no overlap: {wall:?}");
        let overlap =
            d.tracer().overlap_fraction("/machine:0/k40:0/compute", "/machine:0/k40:0/d2h");
        assert!(overlap > 0.5, "overlap fraction {overlap}");
    }

    #[test]
    fn device_naming() {
        let d = Device::new(DeviceId(3), 2, DeviceProfile::gpu_v100(), Tracer::new());
        assert_eq!(d.name(), "/machine:2/v100:3");
        assert_eq!(d.machine(), 2);
        assert_eq!(d.id(), DeviceId(3));
    }
}
