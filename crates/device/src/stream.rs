//! FIFO kernel streams and completion events.

use crate::stats::{DeviceCollector, KernelStats};
use crate::timeline::Tracer;
use dcf_sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A one-shot completion event, analogous to a CUDA event.
///
/// Streams signal an event when a kernel finishes (real computation done
/// *and* modeled duration elapsed); other streams or executor workers can
/// block on it, which is how cross-stream causal dependencies are enforced
/// (§5.3: "a combination of control edges and GPU hardware events to
/// synchronize the dependent operations executed on different streams").
#[derive(Clone, Debug, Default)]
pub struct Event {
    inner: Arc<(Mutex<bool>, Condvar)>,
}

impl Event {
    /// Creates an unsignaled event.
    pub fn new() -> Event {
        Event::default()
    }

    /// Signals the event, waking all waiters.
    pub fn signal(&self) {
        let (lock, cvar) = &*self.inner;
        *lock.lock() = true;
        cvar.notify_all();
    }

    /// Blocks until the event is signaled.
    pub fn wait(&self) {
        let (lock, cvar) = &*self.inner;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
    }

    /// Returns `true` if the event has been signaled.
    pub fn is_signaled(&self) -> bool {
        *self.inner.0.lock()
    }
}

/// Modeled durations below this are served purely by spinning: an OS sleep
/// is not worth its overshoot at this scale, and copy/compute kernels this
/// short are exactly the ones whose drain rate bounds swap throughput.
const PURE_SPIN_BELOW: Duration = Duration::from_micros(100);

/// Measures the scheduler's typical overshoot for a minimal sleep, once per
/// process. A 1ns `thread::sleep` returns after (timer slack + wakeup
/// latency); sleeping `remain - overshoot` then spinning the rest gives
/// microsecond-accurate deadlines without hardcoding a per-kernel guess.
fn sleep_overshoot() -> Duration {
    static OVERSHOOT: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *OVERSHOOT.get_or_init(|| {
        let mut worst = Duration::ZERO;
        for _ in 0..8 {
            let t0 = Instant::now();
            thread::sleep(Duration::from_nanos(1));
            worst = worst.max(t0.elapsed());
        }
        // Headroom for scheduling jitter beyond the sampled worst case,
        // bounded so a loaded calibration run cannot degrade every wait
        // into a full spin.
        (worst * 2).clamp(Duration::from_micros(20), Duration::from_micros(500))
    })
}

/// Waits until `deadline` with microsecond accuracy: OS sleep for the bulk
/// (its granularity is tens of microseconds), then a short spin. The sleep
/// margin is calibrated per process rather than hardcoded — see
/// [`sleep_overshoot`].
///
/// Without the spin, a stream of 2 microsecond copy kernels would drain at
/// the sleeper's ~60 microsecond floor — 30x slower than modeled — and
/// swap-out traffic would back up holding device memory.
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remain = deadline - now;
        if remain > PURE_SPIN_BELOW {
            let margin = sleep_overshoot();
            if remain > margin {
                thread::sleep(remain - margin);
                continue;
            }
        }
        std::hint::spin_loop();
    }
}

/// Sleep quantum for cancellable waits: bounds how long a stream thread
/// can keep sleeping out a modeled duration after its run was aborted,
/// without measurably changing the accuracy of uncancelled waits.
const CANCEL_POLL: Duration = Duration::from_micros(500);

/// Like [`wait_until`], but returns early (abandoning the rest of the
/// modeled duration) once `cancel` becomes true. A timed-out run used to
/// leave stream threads sleeping out full modeled kernel durations; with
/// the flag observed here, aborting a run quiesces its streams within
/// roughly [`CANCEL_POLL`].
fn wait_until_cancellable(deadline: Instant, cancel: &AtomicBool) {
    loop {
        if cancel.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remain = deadline - now;
        if remain > PURE_SPIN_BELOW {
            let margin = sleep_overshoot();
            if remain > margin {
                thread::sleep((remain - margin).min(CANCEL_POLL));
                continue;
            }
        }
        std::hint::spin_loop();
    }
}

struct Task {
    name: String,
    modeled: Duration,
    wait_for: Vec<Event>,
    work: Box<dyn FnOnce() + Send>,
    /// Invoked after the modeled duration has elapsed (i.e. at the same
    /// point the completion event is signaled). Used by the executor for
    /// fully asynchronous kernel completion.
    on_done: Option<Box<dyn FnOnce() + Send>>,
    done: Event,
    /// Run-abort flag: when it turns true the modeled wait is cut short.
    /// The kernel's real computation still runs and its completion event
    /// still fires, so dependents never hang.
    cancel: Option<Arc<AtomicBool>>,
    /// The submitting run's step-stats handle. Carried per kernel (rather
    /// than installed device-wide) so concurrently traced steps on one
    /// device each record into their own collector.
    collector: Option<DeviceCollector>,
}

/// A FIFO kernel queue with a dedicated worker thread.
///
/// Kernels on one stream execute strictly in submission order. Each kernel
/// first waits for its cross-stream dependencies, then runs its real
/// computation, then waits out the remainder of its *modeled* duration
/// before signaling completion — so stream occupancy matches the modeled
/// hardware even though values are computed on the host.
pub(crate) struct Stream {
    sender: Option<mpsc::Sender<Task>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Stream {
    /// Spawns the stream worker. `label` identifies the stream in traces.
    /// Kernel timings are recorded into each task's own collector handle,
    /// so runs tracing concurrently never observe each other's kernels.
    pub(crate) fn spawn(label: String, tracer: Tracer) -> Stream {
        let (sender, receiver) = mpsc::channel::<Task>();
        let handle = thread::Builder::new()
            .name(label.clone())
            .spawn(move || {
                while let Ok(task) = receiver.recv() {
                    for ev in &task.wait_for {
                        ev.wait();
                    }
                    let t0 = Instant::now();
                    (task.work)();
                    match &task.cancel {
                        None => wait_until(t0 + task.modeled),
                        Some(flag) => wait_until_cancellable(t0 + task.modeled, flag),
                    }
                    let end = Instant::now();
                    tracer.record(&label, &task.name, t0, end);
                    if let Some(dc) = &task.collector {
                        dc.kernel(KernelStats {
                            stream: label.clone(),
                            kernel: task.name.clone(),
                            start_us: dc.rel_us(t0),
                            end_us: dc.rel_us(end),
                        });
                    }
                    task.done.signal();
                    if let Some(cb) = task.on_done {
                        cb();
                    }
                }
            })
            .expect("failed to spawn stream thread");
        Stream { sender: Some(sender), handle: Some(handle) }
    }

    /// Enqueues a kernel; returns its completion event immediately.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn submit(
        &self,
        name: String,
        modeled: Duration,
        wait_for: Vec<Event>,
        work: Box<dyn FnOnce() + Send>,
        on_done: Option<Box<dyn FnOnce() + Send>>,
        cancel: Option<Arc<AtomicBool>>,
        collector: Option<DeviceCollector>,
    ) -> Event {
        let done = Event::new();
        let task =
            Task { name, modeled, wait_for, work, on_done, done: done.clone(), cancel, collector };
        let Some(sender) = self.sender.as_ref() else {
            // Stream shut down (device dropping): run inline so callers
            // never hang on an event that would otherwise go unsignaled.
            Stream::run_inline(task);
            return done;
        };
        if let Err(mpsc::SendError(task)) = sender.send(task) {
            // The worker exited between our check and the send (shutdown
            // race); same inline fallback instead of a panic.
            Stream::run_inline(task);
        }
        done
    }

    /// Degraded path for kernels submitted to an already-terminated
    /// stream: execute immediately on the caller, skipping modeled time
    /// (the device is going away; only completion semantics matter).
    fn run_inline(task: Task) {
        for ev in &task.wait_for {
            ev.wait();
        }
        (task.work)();
        task.done.signal();
        if let Some(cb) = task.on_done {
            cb();
        }
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        // Close the queue and drain remaining kernels.
        drop(self.sender.take());
        if let Some(h) = self.handle.take() {
            if h.thread().id() == thread::current().id() {
                // The stream worker itself holds the last reference to its
                // device (an async completion callback outlived the run);
                // the thread exits right after this drop, so detach rather
                // than self-join (which would abort with EDEADLK).
                return;
            }
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn wait_until_never_undershoots() {
        // Short waits take the pure-spin path; longer ones sleep with the
        // calibrated margin and spin the tail. Overshoot bounds are kept
        // loose (shared CI machines), undershoot is exact.
        for wait in [Duration::from_micros(50), Duration::from_micros(300)] {
            let t0 = Instant::now();
            wait_until(t0 + wait);
            let elapsed = t0.elapsed();
            assert!(elapsed >= wait, "undershot: {elapsed:?} < {wait:?}");
            assert!(elapsed < wait + Duration::from_millis(50), "runaway wait: {elapsed:?}");
        }
    }

    #[test]
    fn cancelled_modeled_wait_ends_early() {
        // A fired cancel flag cuts the remaining modeled duration: the
        // kernel's work still runs and its event still signals, but the
        // stream does not sleep out the full modeled time.
        let cancel = Arc::new(AtomicBool::new(true));
        let t0 = Instant::now();
        wait_until_cancellable(t0 + Duration::from_secs(5), &cancel);
        assert!(t0.elapsed() < Duration::from_millis(100), "wait ignored the cancel flag");

        // Unfired flag: the full duration is still waited out.
        let live = Arc::new(AtomicBool::new(false));
        let t0 = Instant::now();
        let wait = Duration::from_millis(5);
        wait_until_cancellable(t0 + wait, &live);
        assert!(t0.elapsed() >= wait, "uncancelled wait undershot");

        // Through the stream: a long modeled kernel aborts promptly once
        // the flag fires, and the completion event still signals.
        let s = Stream::spawn("test".into(), Tracer::new());
        let cancel = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        let t0 = Instant::now();
        let e = s.submit(
            "cancelled".into(),
            Duration::from_secs(30),
            vec![],
            Box::new(move || r.store(true, Ordering::SeqCst)),
            None,
            Some(cancel.clone()),
            None,
        );
        thread::sleep(Duration::from_millis(10));
        cancel.store(true, Ordering::SeqCst);
        e.wait();
        assert!(t0.elapsed() < Duration::from_secs(5), "cancel did not cut the modeled wait");
        assert!(ran.load(Ordering::SeqCst), "work must still run under cancellation");
    }

    #[test]
    fn events_signal_once() {
        let e = Event::new();
        assert!(!e.is_signaled());
        e.signal();
        assert!(e.is_signaled());
        e.wait();
    }

    #[test]
    fn stream_executes_in_fifo_order() {
        let tracer = Tracer::new();
        let s = Stream::spawn("test".into(), tracer);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut events = Vec::new();
        for i in 0..10 {
            let order = order.clone();
            events.push(s.submit(
                format!("k{i}"),
                Duration::ZERO,
                vec![],
                Box::new(move || order.lock().push(i)),
                None,
                None,
                None,
            ));
        }
        for e in &events {
            e.wait();
        }
        assert_eq!(*order.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn modeled_duration_is_waited_out() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let s = Stream::spawn("test".into(), tracer.clone());
        let t0 = Instant::now();
        let e = s.submit(
            "slow".into(),
            Duration::from_millis(20),
            vec![],
            Box::new(|| {}),
            None,
            None,
            None,
        );
        e.wait();
        assert!(t0.elapsed() >= Duration::from_millis(20));
        let events = tracer.snapshot();
        assert_eq!(events.len(), 1);
        assert!(events[0].end_us - events[0].start_us >= 20_000);
    }

    #[test]
    fn kernels_record_into_their_own_collector() {
        use crate::stats::{StepStatsCollector, TraceLevel};

        let s = Stream::spawn("dev/compute".into(), Tracer::new());
        let collector = Arc::new(StepStatsCollector::new(TraceLevel::Full));
        let dev = collector.register_device("dev");
        let dc = DeviceCollector::new(dev, collector.clone());
        // Two runs interleave on one stream: only the kernel carrying this
        // run's handle is recorded into it.
        s.submit(
            "k0".into(),
            Duration::from_millis(2),
            vec![],
            Box::new(|| {}),
            None,
            None,
            Some(dc),
        )
        .wait();
        let other = Arc::new(StepStatsCollector::new(TraceLevel::Full));
        let odc = DeviceCollector::new(other.register_device("dev"), other.clone());
        s.submit("k1".into(), Duration::ZERO, vec![], Box::new(|| {}), None, None, Some(odc))
            .wait();
        s.submit("k2".into(), Duration::ZERO, vec![], Box::new(|| {}), None, None, None).wait();
        let stats = collector.finish();
        let kernels = &stats.devices[0].kernel_stats;
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].kernel, "k0");
        assert_eq!(kernels[0].stream, "dev/compute");
        assert!(kernels[0].end_us - kernels[0].start_us >= 2_000);
        let other_stats = other.finish();
        assert_eq!(other_stats.devices[0].kernel_stats.len(), 1);
        assert_eq!(other_stats.devices[0].kernel_stats[0].kernel, "k1");
    }

    #[test]
    fn cross_stream_dependency_blocks() {
        let tracer = Tracer::new();
        let a = Stream::spawn("a".into(), tracer.clone());
        let b = Stream::spawn("b".into(), tracer);
        let counter = Arc::new(AtomicUsize::new(0));

        let c1 = counter.clone();
        let e1 = a.submit(
            "first".into(),
            Duration::from_millis(10),
            vec![],
            Box::new(move || {
                c1.store(1, Ordering::SeqCst);
            }),
            None,
            None,
            None,
        );
        let c2 = counter.clone();
        let e2 = b.submit(
            "second".into(),
            Duration::ZERO,
            vec![e1],
            Box::new(move || {
                // Must observe the first kernel's full completion.
                assert_eq!(c2.load(Ordering::SeqCst), 1);
            }),
            None,
            None,
            None,
        );
        e2.wait();
    }
}
