//! Simulated heterogeneous devices for the `dcf` runtime.
//!
//! The paper evaluates on clusters of NVIDIA K40/V100 GPUs. This crate
//! substitutes those with *simulated devices* that preserve the properties
//! the evaluation actually measures — overlap of compute and I/O streams,
//! pipelining across parallel loop iterations, memory-capacity limits, and
//! swap traffic — while running on a plain CPU:
//!
//! * Each device has a **profile** (CPU-, K40- or V100-like) with an
//!   analytic cost model mapping an operation and its operand shapes to a
//!   kernel duration.
//! * GPU devices expose three **stream** worker threads (compute, host-to-
//!   device copy, device-to-host copy), exactly the arrangement of §5.3.
//!   Kernels on a stream execute in FIFO order; each computes its real
//!   value, then waits out its *modeled* duration, so concurrency and
//!   overlap behave like the modeled hardware even on one host core.
//! * A **tracking allocator** charges every resident tensor at its modeled
//!   size and produces structured out-of-memory errors when a capacity is
//!   exceeded (the Table 1 experiment).
//! * A **timeline tracer** records per-stream kernel start/end times for
//!   Figure 13-style overlap reports.
//!
//! The **shape-scale** mechanism decouples value computation from modeling:
//! a device configured with `shape_scale = 32` treats a 32×32 matmul as a
//! 1024×1024 one for cost and memory purposes. Experiments therefore
//! compute real (small) values — keeping all tests end-to-end — while
//! durations and footprints match the paper's nominal workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome_trace;
mod cost;
mod device;
pub mod json;
mod memory;
mod profile;
mod stats;
mod stream;
mod timeline;

pub use chrome_trace::chrome_trace_json;
pub use cost::{CostModel, OpCost};
pub use device::{Device, DeviceId, Kernel, KernelOutput, StreamKind};
pub use memory::{MemoryError, Reservation, TrackingAllocator};
pub use profile::DeviceProfile;
pub use stats::{
    DeviceCollector, DeviceStepStats, FrameStats, KernelStats, MemStats, NodeStats, OptimizeStats,
    RendezvousKind, RendezvousWait, StepStats, StepStatsCollector, TraceLevel, TransferStats,
};
pub use stream::Event;
pub use timeline::{TimelineEvent, Tracer};
