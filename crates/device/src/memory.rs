//! Byte-accurate tracking allocator with a hard capacity.

use dcf_sync::{Condvar, Mutex};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error returned when an allocation would exceed device memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryError {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes currently in use.
    pub in_use: usize,
    /// Device capacity.
    pub capacity: usize,
    /// Device name (diagnostic).
    pub device: String,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OOM on {}: requested {} B with {} B in use of {} B capacity",
            self.device, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for MemoryError {}

#[derive(Debug, Default)]
struct Inner {
    in_use: usize,
    peak: usize,
    total_allocs: u64,
    failed_allocs: u64,
}

/// Tracks modeled memory consumption of one device.
///
/// The runtime charges every resident tensor at its *modeled* (shape-scaled)
/// size; the swap engine consults [`TrackingAllocator::pressure`] to decide
/// when to move tensors to host memory (§5.3: "watches the memory
/// consumption reported by the memory allocator, and only starts to swap
/// when memory consumption reaches a predefined threshold").
#[derive(Clone, Debug)]
pub struct TrackingAllocator {
    capacity: usize,
    device: String,
    inner: Arc<(Mutex<Inner>, Condvar)>,
}

impl TrackingAllocator {
    /// Creates an allocator for `device` with `capacity` bytes.
    pub fn new(device: impl Into<String>, capacity: usize) -> TrackingAllocator {
        TrackingAllocator {
            capacity,
            device: device.into(),
            inner: Arc::new((Mutex::new(Inner::default()), Condvar::new())),
        }
    }

    /// Charges `bytes`, failing when capacity would be exceeded.
    pub fn alloc(&self, bytes: usize) -> Result<(), MemoryError> {
        self.alloc_retrying(bytes, Duration::ZERO)
    }

    /// Charges `bytes`; on a full device, waits up to `patience` for
    /// concurrent deallocations (swap-out copies draining, consumers
    /// releasing buffers) to make room before reporting OOM.
    ///
    /// This is the allocator-level backpressure real runtimes apply (e.g.
    /// TensorFlow's retry-on-OOM allocator wrapper): an execution engine
    /// that dispatches faster than the copy streams drain would otherwise
    /// turn a transient high-water mark into a spurious OOM. Callers must
    /// not hold locks that deallocation paths need.
    pub fn alloc_retrying(&self, bytes: usize, patience: Duration) -> Result<(), MemoryError> {
        let (lock, freed) = &*self.inner;
        let mut inner = lock.lock();
        if inner.in_use + bytes > self.capacity && !patience.is_zero() {
            let deadline = Instant::now() + patience;
            while inner.in_use + bytes > self.capacity {
                if Instant::now() >= deadline || freed.wait_until(&mut inner, deadline) {
                    break;
                }
            }
        }
        if inner.in_use + bytes > self.capacity {
            inner.failed_allocs += 1;
            return Err(MemoryError {
                requested: bytes,
                in_use: inner.in_use,
                capacity: self.capacity,
                device: self.device.clone(),
            });
        }
        inner.in_use += bytes;
        inner.peak = inner.peak.max(inner.in_use);
        inner.total_allocs += 1;
        Ok(())
    }

    /// Releases `bytes`.
    ///
    /// Saturates at zero (double-free of modeled bytes is a logic error but
    /// must not wrap the counter).
    pub fn free(&self, bytes: usize) {
        let (lock, freed) = &*self.inner;
        let mut inner = lock.lock();
        inner.in_use = inner.in_use.saturating_sub(bytes);
        freed.notify_all();
    }

    /// Bytes currently charged.
    pub fn in_use(&self) -> usize {
        self.inner.0.lock().in_use
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.inner.0.lock().peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        self.in_use() as f64 / self.capacity.max(1) as f64
    }

    /// Number of successful allocations.
    pub fn total_allocs(&self) -> u64 {
        self.inner.0.lock().total_allocs
    }

    /// Number of failed allocations.
    pub fn failed_allocs(&self) -> u64 {
        self.inner.0.lock().failed_allocs
    }

    /// Snapshot of all counters under one lock, for step-stats reporting.
    pub fn snapshot(&self) -> crate::stats::MemStats {
        let inner = self.inner.0.lock();
        crate::stats::MemStats {
            peak_bytes: inner.peak as u64,
            in_use_bytes: inner.in_use as u64,
            capacity_bytes: self.capacity as u64,
            total_allocs: inner.total_allocs,
            failed_allocs: inner.failed_allocs,
        }
    }

    /// Resets usage counters (between experiment repetitions).
    pub fn reset(&self) {
        let mut inner = self.inner.0.lock();
        *inner = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(60).unwrap();
        assert_eq!(a.in_use(), 60);
        a.alloc(40).unwrap();
        assert_eq!(a.in_use(), 100);
        assert_eq!(a.peak(), 100);
        a.free(50);
        assert_eq!(a.in_use(), 50);
        assert_eq!(a.peak(), 100);
    }

    #[test]
    fn oom_is_structured() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(90).unwrap();
        let err = a.alloc(20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.in_use, 90);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("OOM"));
        assert_eq!(a.failed_allocs(), 1);
        // A failed alloc does not change usage.
        assert_eq!(a.in_use(), 90);
    }

    #[test]
    fn pressure_and_reset() {
        let a = TrackingAllocator::new("gpu:0", 200);
        a.alloc(100).unwrap();
        assert!((a.pressure() - 0.5).abs() < 1e-9);
        a.reset();
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.peak(), 0);
    }

    #[test]
    fn free_saturates() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(10).unwrap();
        a.free(50);
        assert_eq!(a.in_use(), 0);
    }

    #[test]
    fn retrying_alloc_waits_for_a_concurrent_free() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(90).unwrap();
        let b = a.clone();
        let freer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            b.free(50);
        });
        // Needs 20 B; succeeds only because the free lands within patience.
        a.alloc_retrying(20, Duration::from_secs(2)).unwrap();
        freer.join().unwrap();
        assert_eq!(a.in_use(), 60);
        assert_eq!(a.failed_allocs(), 0);
    }

    #[test]
    fn retrying_alloc_times_out_without_frees() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(90).unwrap();
        let t0 = Instant::now();
        let err = a.alloc_retrying(20, Duration::from_millis(50)).unwrap_err();
        assert!(t0.elapsed() >= Duration::from_millis(50));
        assert_eq!(err.requested, 20);
        assert_eq!(a.failed_allocs(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = TrackingAllocator::new("gpu:0", 100);
        let b = a.clone();
        a.alloc(30).unwrap();
        assert_eq!(b.in_use(), 30);
    }
}
