//! Byte-accurate tracking allocator with a hard capacity.

use dcf_sync::{Condvar, Mutex};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error returned when an allocation would exceed device memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryError {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes currently in use.
    pub in_use: usize,
    /// Device capacity.
    pub capacity: usize,
    /// Device name (diagnostic).
    pub device: String,
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OOM on {}: requested {} B with {} B in use of {} B capacity",
            self.device, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for MemoryError {}

#[derive(Debug, Default)]
struct Inner {
    in_use: usize,
    peak: usize,
    total_allocs: u64,
    failed_allocs: u64,
    over_frees: u64,
}

/// Tracks modeled memory consumption of one device.
///
/// The runtime charges every resident tensor at its *modeled* (shape-scaled)
/// size; the swap engine consults [`TrackingAllocator::pressure`] to decide
/// when to move tensors to host memory (§5.3: "watches the memory
/// consumption reported by the memory allocator, and only starts to swap
/// when memory consumption reaches a predefined threshold").
#[derive(Clone, Debug)]
pub struct TrackingAllocator {
    capacity: usize,
    device: String,
    inner: Arc<(Mutex<Inner>, Condvar)>,
}

impl TrackingAllocator {
    /// Creates an allocator for `device` with `capacity` bytes.
    pub fn new(device: impl Into<String>, capacity: usize) -> TrackingAllocator {
        TrackingAllocator {
            capacity,
            device: device.into(),
            inner: Arc::new((Mutex::new(Inner::default()), Condvar::new())),
        }
    }

    /// Charges `bytes`, failing when capacity would be exceeded.
    pub fn alloc(&self, bytes: usize) -> Result<(), MemoryError> {
        self.alloc_retrying(bytes, Duration::ZERO)
    }

    /// Charges `bytes`; on a full device, waits up to `patience` for
    /// concurrent deallocations (swap-out copies draining, consumers
    /// releasing buffers) to make room before reporting OOM.
    ///
    /// This is the allocator-level backpressure real runtimes apply (e.g.
    /// TensorFlow's retry-on-OOM allocator wrapper): an execution engine
    /// that dispatches faster than the copy streams drain would otherwise
    /// turn a transient high-water mark into a spurious OOM. Callers must
    /// not hold locks that deallocation paths need.
    pub fn alloc_retrying(&self, bytes: usize, patience: Duration) -> Result<(), MemoryError> {
        let (lock, freed) = &*self.inner;
        let mut inner = lock.lock();
        if inner.in_use + bytes > self.capacity && !patience.is_zero() {
            let deadline = Instant::now() + patience;
            while inner.in_use + bytes > self.capacity {
                if Instant::now() >= deadline || freed.wait_until(&mut inner, deadline) {
                    break;
                }
            }
        }
        if inner.in_use + bytes > self.capacity {
            inner.failed_allocs += 1;
            return Err(MemoryError {
                requested: bytes,
                in_use: inner.in_use,
                capacity: self.capacity,
                device: self.device.clone(),
            });
        }
        inner.in_use += bytes;
        inner.peak = inner.peak.max(inner.in_use);
        inner.total_allocs += 1;
        Ok(())
    }

    /// Releases `bytes`.
    ///
    /// Saturates at zero — but an over-free (freeing more than is charged,
    /// i.e. a double-drop of a modeled charge) is a caller logic error and
    /// is counted in [`TrackingAllocator::over_frees`] rather than silently
    /// corrupting the accounting. Tests assert the counter stays zero so
    /// memory-planner bugs cannot hide behind the saturation.
    pub fn free(&self, bytes: usize) {
        let (lock, freed) = &*self.inner;
        let mut inner = lock.lock();
        if bytes > inner.in_use {
            inner.over_frees += 1;
            inner.in_use = 0;
        } else {
            inner.in_use -= bytes;
        }
        freed.notify_all();
    }

    /// Bytes currently charged.
    pub fn in_use(&self) -> usize {
        self.inner.0.lock().in_use
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.inner.0.lock().peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        self.in_use() as f64 / self.capacity.max(1) as f64
    }

    /// Number of successful allocations.
    pub fn total_allocs(&self) -> u64 {
        self.inner.0.lock().total_allocs
    }

    /// Number of failed allocations.
    pub fn failed_allocs(&self) -> u64 {
        self.inner.0.lock().failed_allocs
    }

    /// Number of over-frees observed: calls to [`TrackingAllocator::free`]
    /// that released more bytes than were charged. Always zero in a correct
    /// run; any other value means a modeled charge was double-dropped.
    pub fn over_frees(&self) -> u64 {
        self.inner.0.lock().over_frees
    }

    /// Charges `bytes` as one RAII reservation: the bytes are released when
    /// the returned [`Reservation`] drops. On a full device, waits up to
    /// `patience` for concurrent deallocations before reporting OOM (same
    /// backpressure as [`TrackingAllocator::alloc_retrying`]).
    ///
    /// This is the surface the static memory planner uses: one up-front
    /// reservation covering a whole planned region, instead of one
    /// alloc/free round-trip per kernel output.
    pub fn reserve(&self, bytes: usize, patience: Duration) -> Result<Reservation, MemoryError> {
        self.alloc_retrying(bytes, patience)?;
        Ok(Reservation { allocator: self.clone(), bytes })
    }

    /// Snapshot of all counters under one lock, for step-stats reporting.
    pub fn snapshot(&self) -> crate::stats::MemStats {
        let inner = self.inner.0.lock();
        crate::stats::MemStats {
            peak_bytes: inner.peak as u64,
            in_use_bytes: inner.in_use as u64,
            capacity_bytes: self.capacity as u64,
            total_allocs: inner.total_allocs,
            failed_allocs: inner.failed_allocs,
            over_frees: inner.over_frees,
        }
    }

    /// Resets usage counters (between experiment repetitions).
    pub fn reset(&self) {
        let mut inner = self.inner.0.lock();
        *inner = Inner::default();
    }
}

/// An RAII byte reservation against a [`TrackingAllocator`]: created by
/// [`TrackingAllocator::reserve`], released exactly once on drop. The
/// reservation counts as a single allocation however many tensors the
/// caller packs into it.
#[derive(Debug)]
pub struct Reservation {
    allocator: TrackingAllocator,
    bytes: usize,
}

impl Reservation {
    /// The reserved size in (modeled) bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.allocator.free(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(60).unwrap();
        assert_eq!(a.in_use(), 60);
        a.alloc(40).unwrap();
        assert_eq!(a.in_use(), 100);
        assert_eq!(a.peak(), 100);
        a.free(50);
        assert_eq!(a.in_use(), 50);
        assert_eq!(a.peak(), 100);
    }

    #[test]
    fn oom_is_structured() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(90).unwrap();
        let err = a.alloc(20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.in_use, 90);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("OOM"));
        assert_eq!(a.failed_allocs(), 1);
        // A failed alloc does not change usage.
        assert_eq!(a.in_use(), 90);
    }

    #[test]
    fn pressure_and_reset() {
        let a = TrackingAllocator::new("gpu:0", 200);
        a.alloc(100).unwrap();
        assert!((a.pressure() - 0.5).abs() < 1e-9);
        a.reset();
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.peak(), 0);
    }

    #[test]
    fn free_saturates_and_counts_over_frees() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(10).unwrap();
        a.free(50);
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.over_frees(), 1, "over-free must be counted, not hidden");
        // A balanced free is not an over-free.
        a.alloc(30).unwrap();
        a.free(30);
        assert_eq!(a.over_frees(), 1);
        assert_eq!(a.snapshot().over_frees, 1);
        // reset clears the counter with the rest.
        a.reset();
        assert_eq!(a.over_frees(), 0);
    }

    #[test]
    fn reservation_charges_once_and_frees_on_drop() {
        let a = TrackingAllocator::new("gpu:0", 100);
        let r = a.reserve(60, Duration::ZERO).unwrap();
        assert_eq!(r.bytes(), 60);
        assert_eq!(a.in_use(), 60);
        assert_eq!(a.total_allocs(), 1, "a reservation is one allocation");
        drop(r);
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.over_frees(), 0);
        // Reservations respect capacity like any other charge.
        assert!(a.reserve(200, Duration::ZERO).is_err());
        assert_eq!(a.failed_allocs(), 1);
    }

    #[test]
    fn retrying_alloc_waits_for_a_concurrent_free() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(90).unwrap();
        let b = a.clone();
        let freer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            b.free(50);
        });
        // Needs 20 B; succeeds only because the free lands within patience.
        a.alloc_retrying(20, Duration::from_secs(2)).unwrap();
        freer.join().unwrap();
        assert_eq!(a.in_use(), 60);
        assert_eq!(a.failed_allocs(), 0);
    }

    #[test]
    fn retrying_alloc_times_out_without_frees() {
        let a = TrackingAllocator::new("gpu:0", 100);
        a.alloc(90).unwrap();
        let t0 = Instant::now();
        let err = a.alloc_retrying(20, Duration::from_millis(50)).unwrap_err();
        assert!(t0.elapsed() >= Duration::from_millis(50));
        assert_eq!(err.requested, 20);
        assert_eq!(a.failed_allocs(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = TrackingAllocator::new("gpu:0", 100);
        let b = a.clone();
        a.alloc(30).unwrap();
        assert_eq!(b.in_use(), 30);
    }
}
