//! A minimal JSON value model and parser.
//!
//! The workspace builds fully offline with no external crates, so the
//! Chrome-trace tooling cannot lean on `serde_json`. This module provides
//! the small subset needed to emit and *round-trip* trace files: a
//! [`Json`] value enum, a strict recursive-descent [`parse`], and a
//! [`escape`] helper shared with the emitter.

use std::fmt;

/// A parsed JSON value. Objects preserve key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value truncated to `u64`, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { s: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect a following \uXXXX low
                            // half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid UTF-8 byte")),
                        };
                        if start + len > self.s.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                        let chunk = std::str::from_utf8(&self.s[start..start + len])
                            .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                        out.push_str(chunk);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "a\"b\\c\nd\te\u{1}µ→";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[ ]").unwrap(), Json::Arr(vec![]));
    }
}
