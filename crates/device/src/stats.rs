//! Per-run step statistics: the schema ([`StepStats`]) and the lock-cheap
//! collector ([`StepStatsCollector`]) that every execution layer records
//! into.
//!
//! The surface follows TensorFlow's `RunOptions.trace_level` →
//! `RunMetadata.step_stats` design: a session creates one collector per
//! traced run and hands per-device handles ([`DeviceCollector`]) down to
//! executors, device stream threads, and the network simulator. Collection
//! is sharded per recording thread — a recording thread locks only its own
//! shard, so concurrent workers, stream threads, and rendezvous callbacks
//! never contend on a global lock — and the shards are merged exactly once
//! at run end by [`StepStatsCollector::finish`]. This mirrors the per-frame
//! sharding discipline of the executor (see `DESIGN.md`, "Observability").
//!
//! When tracing is disabled the executor holds no collector at all (an
//! `Option` checked once per node activation), so the hot path pays nothing.

use dcf_sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How much detail a run records, mirroring TensorFlow's
/// `RunOptions.TraceLevel`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// No collection at all; the executor hot path is untouched.
    #[default]
    None,
    /// Software events only: per-node timings, per-frame iteration and
    /// dead-token counts, rendezvous waits.
    Software,
    /// Everything in [`TraceLevel::Software`] plus device-level events:
    /// per-stream kernel timings, allocator high-water marks, and modeled
    /// network transfers.
    Full,
}

impl TraceLevel {
    /// `true` when any collection happens at this level.
    pub fn is_enabled(self) -> bool {
        self != TraceLevel::None
    }
}

/// Timing of one node activation (one node in one frame iteration).
#[derive(Clone, Debug)]
pub struct NodeStats {
    /// Node name.
    pub node: String,
    /// Base tag of the frame activation the node executed in (e.g.
    /// `"root;0/while_frame_12"`); unique per dynamic frame activation.
    pub frame: String,
    /// Iteration within the frame.
    pub iter: u64,
    /// Ordinal of the worker thread that executed the activation (filled in
    /// by the collector; stable per OS thread).
    pub worker: u32,
    /// When the activation was enqueued on the worker pool, µs since the
    /// collector epoch.
    pub scheduled_us: u64,
    /// When a worker started executing it, µs since the collector epoch.
    pub start_us: u64,
    /// When the worker finished the synchronous part, µs since the
    /// collector epoch. For asynchronous ops (device kernels, `Recv`) this
    /// is the dispatch-side span — the op is "done once enqueued" (§4.4).
    pub end_us: u64,
    /// The activation was dead (untaken branch / loop termination wave), as
    /// known at dispatch time.
    pub is_dead: bool,
}

/// Timing of one kernel on one device stream thread.
#[derive(Clone, Debug)]
pub struct KernelStats {
    /// Stream label, e.g. `"/machine:0/k40:0/compute"`.
    pub stream: String,
    /// Kernel name.
    pub kernel: String,
    /// Start, µs since the collector epoch.
    pub start_us: u64,
    /// End, µs since the collector epoch.
    pub end_us: u64,
}

/// Allocator counters of one device at the end of a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemStats {
    /// High-water mark of modeled bytes in use.
    pub peak_bytes: u64,
    /// Modeled bytes still in use when the run ended.
    pub in_use_bytes: u64,
    /// Device capacity in bytes.
    pub capacity_bytes: u64,
    /// Successful allocations.
    pub total_allocs: u64,
    /// Failed (OOM) allocations.
    pub failed_allocs: u64,
    /// Over-frees observed (more bytes released than charged): always zero
    /// unless a modeled charge was double-dropped.
    pub over_frees: u64,
}

/// Summary of one completed frame activation (one `while_loop` execution).
#[derive(Clone, Debug)]
pub struct FrameStats {
    /// The activation's base tag (unique per dynamic activation).
    pub frame: String,
    /// Iterations started, including the final iteration whose predicate
    /// came out false (its body runs as a dead wave).
    pub iterations: u64,
    /// Dead node activations completed in this frame — the size of untaken
    /// `cond` branches plus the loop-termination wave.
    pub dead_tokens: u64,
}

/// Which side of a rendezvous a wait was measured on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RendezvousKind {
    /// Time spent inside `Rendezvous::send` (includes synchronous delivery
    /// to an already-parked receiver).
    Send,
    /// Time from issuing `recv_async` until its callback fired.
    Recv,
}

/// One rendezvous send or recv wait.
#[derive(Clone, Debug)]
pub struct RendezvousWait {
    /// Full rendezvous key (includes the dynamic frame/iteration tag).
    pub key: String,
    /// Send- or recv-side measurement.
    pub kind: RendezvousKind,
    /// When the operation was issued, µs since the collector epoch.
    pub start_us: u64,
    /// How long it waited, µs.
    pub wait_us: u64,
}

/// One modeled cross-device tensor transfer (network simulator).
#[derive(Clone, Debug)]
pub struct TransferStats {
    /// Rendezvous key of the transfer.
    pub key: String,
    /// Modeled payload size in bytes.
    pub bytes: u64,
    /// When the send was issued, µs since the collector epoch.
    pub start_us: u64,
    /// Modeled transfer delay, µs.
    pub delay_us: u64,
}

/// All events recorded for one device during a run.
#[derive(Clone, Debug, Default)]
pub struct DeviceStepStats {
    /// Device name, e.g. `"/machine:0/k40:0"`.
    pub device: String,
    /// Node activations executed by this device's executor.
    pub node_stats: Vec<NodeStats>,
    /// Kernels executed on this device's stream threads
    /// ([`TraceLevel::Full`] only).
    pub kernel_stats: Vec<KernelStats>,
    /// Completed frame activations on this device's executor.
    pub frames: Vec<FrameStats>,
    /// Rendezvous waits measured on this device's executor.
    pub rendezvous: Vec<RendezvousWait>,
    /// Allocator counters at run end ([`TraceLevel::Full`] only).
    pub memory: Option<MemStats>,
}

/// Per-pass rewrite counters of the session's one-time graph optimization.
///
/// Filled at session construction and copied into every run's metadata:
/// optimization happens once per compiled graph, not per step, so these
/// are compile-time facts about the graph the steps execute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Nodes replaced by constants (constant propagation).
    pub folded: usize,
    /// Duplicate nodes merged by common-subexpression elimination.
    pub cse: usize,
    /// Dead nodes physically removed (and the node table compacted) by
    /// the pruning pass: CSE duplicates and fusion-absorbed members.
    pub pruned: usize,
    /// `Fused` nodes created by elementwise-chain fusion.
    pub fused: usize,
    /// Original elementwise nodes collapsed into those `Fused` nodes.
    pub fused_away: usize,
    /// Wall time of the whole pipeline, µs.
    pub wall_us: u64,
    /// `true` if the session reused a cached compiled graph (the counters
    /// then describe the cached artifact's original optimization).
    pub cache_hit: bool,
    /// Bytes covered by the static memory plan across all partitions: the
    /// summed up-front region reservations that replace per-kernel
    /// allocator round-trips. Zero when planning is off or nothing on a
    /// charging device was plannable.
    pub planned_bytes: u64,
    /// Plan slots hosting more than one output — buffers whose lifetimes
    /// were proven disjoint and aliased into shared storage.
    pub aliased_slots: usize,
    /// Charged outputs that fell back to the dynamic per-token path
    /// because their shape is unknown at compile time.
    pub dynamic_fallbacks: usize,
}

/// The merged statistics of one traced run, returned inside the session's
/// `RunMetadata`.
#[derive(Clone, Debug, Default)]
pub struct StepStats {
    /// Per-device statistics, in cluster device order.
    pub devices: Vec<DeviceStepStats>,
    /// Modeled network transfers (cross-device sends), in issue order.
    pub transfers: Vec<TransferStats>,
    /// The run's `RunOptions` tag (empty when untagged). Carried into the
    /// Chrome-trace export as a track-name suffix so traces of batched
    /// serving steps stay distinguishable when several are merged.
    pub tag: String,
    /// The session's one-time graph-optimization counters, when the
    /// session ran the pipeline (`None` under `OptLevel::None`).
    pub optimization: Option<OptimizeStats>,
}

/// Number of shard buffers. Recording threads hash to a shard by their
/// process-wide thread ordinal; 16 shards keep collisions rare for typical
/// worker counts without bloating the merge.
const SHARDS: usize = 16;

/// Events buffered by one shard before the run-end merge.
#[derive(Debug, Default)]
struct Shard {
    nodes: Vec<(u16, NodeStats)>,
    kernels: Vec<(u16, KernelStats)>,
    frames: Vec<(u16, FrameStats)>,
    rendezvous: Vec<(u16, RendezvousWait)>,
    transfers: Vec<TransferStats>,
}

/// Stable, process-wide ordinal of the calling thread (first use assigns).
fn thread_ordinal() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static ORDINAL: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
    }
    ORDINAL.with(|c| {
        if c.get() == u32::MAX {
            c.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        c.get()
    })
}

/// Per-run statistics collector.
///
/// Created by the session when `RunOptions.trace_level` is not
/// [`TraceLevel::None`]; recording methods are cheap (one lock on the
/// caller's own shard) and [`StepStatsCollector::finish`] merges the shards
/// into a [`StepStats`] once at run end.
#[derive(Debug)]
pub struct StepStatsCollector {
    level: TraceLevel,
    epoch: Instant,
    devices: Mutex<Vec<String>>,
    memory: Mutex<Vec<(u16, MemStats)>>,
    shards: Vec<Mutex<Shard>>,
}

impl StepStatsCollector {
    /// Creates a collector recording at `level`; the epoch (time zero of
    /// all recorded offsets) is now.
    pub fn new(level: TraceLevel) -> StepStatsCollector {
        StepStatsCollector {
            level,
            epoch: Instant::now(),
            devices: Mutex::new(Vec::new()),
            memory: Mutex::new(Vec::new()),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// The collection level this collector was created with.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Microseconds elapsed since the collector epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Converts an instant into µs since the collector epoch (saturating
    /// at zero for instants before the epoch).
    pub fn rel_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Registers a device, returning the index to tag its events with.
    /// Call once per device, before any recording for it.
    pub fn register_device(&self, name: &str) -> u16 {
        let mut devices = self.devices.lock();
        devices.push(name.to_owned());
        (devices.len() - 1) as u16
    }

    fn shard(&self) -> &Mutex<Shard> {
        &self.shards[thread_ordinal() as usize % SHARDS]
    }

    /// Records one node activation for device `device`. The `worker` field
    /// is filled in with the calling thread's ordinal.
    pub fn record_node(&self, device: u16, mut ns: NodeStats) {
        ns.worker = thread_ordinal();
        self.shard().lock().nodes.push((device, ns));
    }

    /// Records one stream kernel for device `device`.
    pub fn record_kernel(&self, device: u16, ks: KernelStats) {
        self.shard().lock().kernels.push((device, ks));
    }

    /// Records one completed frame activation for device `device`.
    pub fn record_frame(&self, device: u16, fs: FrameStats) {
        self.shard().lock().frames.push((device, fs));
    }

    /// Records one rendezvous wait for device `device`.
    pub fn record_rendezvous(&self, device: u16, w: RendezvousWait) {
        self.shard().lock().rendezvous.push((device, w));
    }

    /// Records one modeled network transfer (not tied to a device).
    pub fn record_transfer(&self, t: TransferStats) {
        self.shard().lock().transfers.push(t);
    }

    /// Records the allocator snapshot of device `device`.
    pub fn record_memory(&self, device: u16, m: MemStats) {
        self.memory.lock().push((device, m));
    }

    /// Merges all shards into the final [`StepStats`]. Terminal: the
    /// collector's buffers are drained; recording after `finish` feeds a
    /// fresh (discarded-at-drop) set of shards.
    pub fn finish(&self) -> StepStats {
        let names = self.devices.lock().clone();
        let mut devices: Vec<DeviceStepStats> = names
            .into_iter()
            .map(|device| DeviceStepStats { device, ..Default::default() })
            .collect();
        let mut transfers = Vec::new();
        for shard in &self.shards {
            let mut s = shard.lock();
            for (d, ns) in s.nodes.drain(..) {
                if let Some(dev) = devices.get_mut(d as usize) {
                    dev.node_stats.push(ns);
                }
            }
            for (d, ks) in s.kernels.drain(..) {
                if let Some(dev) = devices.get_mut(d as usize) {
                    dev.kernel_stats.push(ks);
                }
            }
            for (d, fs) in s.frames.drain(..) {
                if let Some(dev) = devices.get_mut(d as usize) {
                    dev.frames.push(fs);
                }
            }
            for (d, w) in s.rendezvous.drain(..) {
                if let Some(dev) = devices.get_mut(d as usize) {
                    dev.rendezvous.push(w);
                }
            }
            transfers.append(&mut s.transfers);
        }
        for (d, m) in self.memory.lock().drain(..) {
            if let Some(dev) = devices.get_mut(d as usize) {
                dev.memory = Some(m);
            }
        }
        // Deterministic ordering regardless of shard interleaving.
        for dev in &mut devices {
            dev.node_stats.sort_by_key(|n| (n.start_us, n.node.clone()));
            dev.kernel_stats.sort_by_key(|k| (k.start_us, k.stream.clone()));
            dev.frames.sort_by_key(|f| f.frame.clone());
            dev.rendezvous.sort_by_key(|w| (w.start_us, w.key.clone()));
        }
        transfers.sort_by_key(|t| (t.start_us, t.key.clone()));
        StepStats { devices, transfers, tag: String::new(), optimization: None }
    }
}

/// A per-device recording handle: a [`StepStatsCollector`] bound to one
/// registered device index. This is what the session hands down to each
/// executor, device, and stream thread.
#[derive(Clone, Debug)]
pub struct DeviceCollector {
    device: u16,
    collector: Arc<StepStatsCollector>,
}

impl DeviceCollector {
    /// Binds `collector` to registered device index `device`.
    pub fn new(device: u16, collector: Arc<StepStatsCollector>) -> DeviceCollector {
        DeviceCollector { device, collector }
    }

    /// The bound device index.
    pub fn device(&self) -> u16 {
        self.device
    }

    /// The underlying collector.
    pub fn collector(&self) -> &Arc<StepStatsCollector> {
        &self.collector
    }

    /// Microseconds since the collector epoch.
    pub fn now_us(&self) -> u64 {
        self.collector.now_us()
    }

    /// Converts an instant into µs since the collector epoch.
    pub fn rel_us(&self, t: Instant) -> u64 {
        self.collector.rel_us(t)
    }

    /// Records one node activation.
    pub fn node(&self, ns: NodeStats) {
        self.collector.record_node(self.device, ns);
    }

    /// Records one stream kernel.
    pub fn kernel(&self, ks: KernelStats) {
        self.collector.record_kernel(self.device, ks);
    }

    /// Records one completed frame activation.
    pub fn frame(&self, fs: FrameStats) {
        self.collector.record_frame(self.device, fs);
    }

    /// Records one rendezvous wait.
    pub fn rendezvous(&self, w: RendezvousWait) {
        self.collector.record_rendezvous(self.device, w);
    }
}

// ---------------------------------------------------------------------
// Aggregations (absorbing `Tracer::busy_per_stream` / `overlap_fraction`)
// ---------------------------------------------------------------------

fn merge_busy(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn overlap_us(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let mut total = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if e > s {
            total += e - s;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

impl StepStats {
    /// All kernel events across devices.
    fn kernels(&self) -> impl Iterator<Item = &KernelStats> {
        self.devices.iter().flat_map(|d| d.kernel_stats.iter())
    }

    fn stream_intervals(&self, stream: &str) -> Vec<(u64, u64)> {
        self.kernels().filter(|k| k.stream == stream).map(|k| (k.start_us, k.end_us)).collect()
    }

    /// Total busy microseconds per stream (kernel events).
    pub fn busy_per_stream(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        for k in self.kernels() {
            *map.entry(k.stream.clone()).or_insert(0) += k.end_us - k.start_us;
        }
        map
    }

    /// Fraction of stream `a`'s busy time that overlaps stream `b`'s busy
    /// time — the §5.3 compute/copy-overlap measurement.
    pub fn overlap_fraction(&self, a: &str, b: &str) -> f64 {
        let ia = merge_busy(self.stream_intervals(a));
        let busy_a: u64 = ia.iter().map(|(s, e)| e - s).sum();
        if busy_a == 0 {
            return 0.0;
        }
        let ib = merge_busy(self.stream_intervals(b));
        overlap_us(&ia, &ib) as f64 / busy_a as f64
    }

    /// Renders an ASCII timeline of the kernel events, one row per stream,
    /// `width` columns.
    pub fn ascii_timeline(&self, width: usize) -> String {
        let events: Vec<&KernelStats> = self.kernels().collect();
        if events.is_empty() {
            return String::from("(no events)\n");
        }
        let t_min = events.iter().map(|e| e.start_us).min().unwrap_or(0);
        let t_max = events.iter().map(|e| e.end_us).max().unwrap_or(1).max(t_min + 1);
        let span = (t_max - t_min) as f64;
        let mut streams: Vec<&str> = events.iter().map(|e| e.stream.as_str()).collect();
        streams.sort_unstable();
        streams.dedup();
        let mut out = String::new();
        for s in &streams {
            let mut row = vec![b'.'; width];
            for e in events.iter().filter(|e| e.stream == *s) {
                let a = (((e.start_us - t_min) as f64 / span) * width as f64) as usize;
                let b = (((e.end_us - t_min) as f64 / span) * width as f64).ceil() as usize;
                for c in row.iter_mut().take(b.min(width)).skip(a.min(width.saturating_sub(1))) {
                    *c = b'#';
                }
            }
            out.push_str(&format!("{:<24} {}\n", s, String::from_utf8_lossy(&row)));
        }
        out
    }

    /// Renders an aggregated text report: top-`top_n` nodes by self time,
    /// per-stream busy time and fraction, pairwise copy/compute overlap,
    /// frame iteration and dead-token counts, rendezvous waits, memory
    /// high-water marks, and network transfers.
    pub fn summary_report(&self, top_n: usize) -> String {
        let mut out = String::new();
        if let Some(o) = &self.optimization {
            out.push_str(&format!(
                "graph optimization: {} folded, {} CSE'd, {} pruned, {} fused ({} nodes \
                 collapsed), {} us{}\n",
                o.folded,
                o.cse,
                o.pruned,
                o.fused,
                o.fused_away,
                o.wall_us,
                if o.cache_hit { " (cached compile)" } else { "" }
            ));
            if o.planned_bytes > 0 || o.dynamic_fallbacks > 0 {
                out.push_str(&format!(
                    "memory plan: {} B planned, {} aliased slots, {} dynamic fallbacks\n",
                    o.planned_bytes, o.aliased_slots, o.dynamic_fallbacks
                ));
            }
        }
        for dev in &self.devices {
            out.push_str(&format!("== {} ==\n", dev.device));

            // Top nodes by total self (dispatch-side) time.
            let mut per_node: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
            for n in &dev.node_stats {
                let e = per_node.entry(n.node.as_str()).or_insert((0, 0));
                e.0 += n.end_us - n.start_us;
                e.1 += 1;
            }
            let mut ranked: Vec<(&str, u64, u64)> =
                per_node.into_iter().map(|(name, (us, cnt))| (name, us, cnt)).collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            if !ranked.is_empty() {
                out.push_str(&format!("top {} nodes by self time:\n", top_n.min(ranked.len())));
                for (name, us, cnt) in ranked.iter().take(top_n) {
                    out.push_str(&format!("  {name:<32} {us:>10} us  ({cnt} activations)\n"));
                }
            }

            // Per-stream busy and overlap (this device's streams only).
            let span_us = dev
                .kernel_stats
                .iter()
                .map(|k| k.end_us)
                .max()
                .unwrap_or(0)
                .saturating_sub(dev.kernel_stats.iter().map(|k| k.start_us).min().unwrap_or(0));
            let mut streams: Vec<&str> =
                dev.kernel_stats.iter().map(|k| k.stream.as_str()).collect();
            streams.sort_unstable();
            streams.dedup();
            for s in &streams {
                let busy: u64 = dev
                    .kernel_stats
                    .iter()
                    .filter(|k| k.stream == *s)
                    .map(|k| k.end_us - k.start_us)
                    .sum();
                let pct = if span_us > 0 { 100.0 * busy as f64 / span_us as f64 } else { 0.0 };
                out.push_str(&format!("stream {s:<32} busy {busy:>10} us ({pct:5.1}%)\n"));
            }
            let compute = streams.iter().find(|s| s.ends_with("/compute")).copied();
            if let Some(c) = compute {
                for s in streams.iter().filter(|s| **s != c) {
                    out.push_str(&format!(
                        "overlap({s}, compute) = {:.3}\n",
                        self.overlap_fraction(s, c)
                    ));
                }
            }

            // Frames.
            for f in &dev.frames {
                out.push_str(&format!(
                    "frame {:<40} iterations {:>6}  dead tokens {:>6}\n",
                    f.frame, f.iterations, f.dead_tokens
                ));
            }

            // Rendezvous waits.
            if !dev.rendezvous.is_empty() {
                let (mut sends, mut recvs, mut send_us, mut recv_us, mut max_us) =
                    (0u64, 0u64, 0u64, 0u64, 0u64);
                for w in &dev.rendezvous {
                    match w.kind {
                        RendezvousKind::Send => {
                            sends += 1;
                            send_us += w.wait_us;
                        }
                        RendezvousKind::Recv => {
                            recvs += 1;
                            recv_us += w.wait_us;
                        }
                    }
                    max_us = max_us.max(w.wait_us);
                }
                out.push_str(&format!(
                    "rendezvous: {sends} sends ({send_us} us), {recvs} recvs ({recv_us} us), max wait {max_us} us\n"
                ));
            }

            if let Some(m) = &dev.memory {
                out.push_str(&format!(
                    "memory: peak {} B / {} B capacity, {} allocs ({} failed, {} over-frees)\n",
                    m.peak_bytes, m.capacity_bytes, m.total_allocs, m.failed_allocs, m.over_frees
                ));
            }
        }
        if !self.transfers.is_empty() {
            let bytes: u64 = self.transfers.iter().map(|t| t.bytes).sum();
            let delay: u64 = self.transfers.iter().map(|t| t.delay_us).sum();
            out.push_str(&format!(
                "network: {} transfers, {} B, {} us total modeled delay\n",
                self.transfers.len(),
                bytes,
                delay
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, start: u64, end: u64, dead: bool) -> NodeStats {
        NodeStats {
            node: name.into(),
            frame: "root".into(),
            iter: 0,
            worker: 0,
            scheduled_us: start,
            start_us: start,
            end_us: end,
            is_dead: dead,
        }
    }

    fn kernel(stream: &str, start: u64, end: u64) -> KernelStats {
        KernelStats { stream: stream.into(), kernel: "k".into(), start_us: start, end_us: end }
    }

    #[test]
    fn finish_merges_by_device() {
        let c = StepStatsCollector::new(TraceLevel::Full);
        let d0 = c.register_device("/machine:0/cpu:0");
        let d1 = c.register_device("/machine:0/k40:1");
        c.record_node(d0, node("a", 0, 5, false));
        c.record_node(d1, node("b", 1, 2, true));
        c.record_kernel(d1, kernel("/machine:0/k40:1/compute", 0, 10));
        c.record_frame(d0, FrameStats { frame: "root".into(), iterations: 1, dead_tokens: 0 });
        c.record_memory(d1, MemStats { peak_bytes: 7, ..Default::default() });
        let stats = c.finish();
        assert_eq!(stats.devices.len(), 2);
        assert_eq!(stats.devices[0].device, "/machine:0/cpu:0");
        assert_eq!(stats.devices[0].node_stats.len(), 1);
        assert_eq!(stats.devices[1].node_stats[0].node, "b");
        assert!(stats.devices[1].node_stats[0].is_dead);
        assert_eq!(stats.devices[1].kernel_stats.len(), 1);
        assert_eq!(stats.devices[0].frames[0].iterations, 1);
        assert_eq!(stats.devices[1].memory.unwrap().peak_bytes, 7);
        assert!(stats.devices[0].memory.is_none());
    }

    #[test]
    fn busy_and_overlap() {
        let c = StepStatsCollector::new(TraceLevel::Full);
        let d = c.register_device("dev");
        c.record_kernel(d, kernel("a", 0, 10_000));
        c.record_kernel(d, kernel("a", 20_000, 25_000));
        c.record_kernel(d, kernel("b", 5_000, 15_000));
        let stats = c.finish();
        let busy = stats.busy_per_stream();
        assert_eq!(busy["a"], 15_000);
        assert_eq!(busy["b"], 10_000);
        // a busy 15 ms, 5 ms of it overlapping b.
        assert!((stats.overlap_fraction("a", "b") - 5_000.0 / 15_000.0).abs() < 1e-9);
        assert_eq!(stats.overlap_fraction("missing", "b"), 0.0);
    }

    #[test]
    fn merged_intervals_do_not_double_count() {
        let c = StepStatsCollector::new(TraceLevel::Full);
        let d = c.register_device("dev");
        // Two overlapping events on `a` must merge before comparing to b.
        c.record_kernel(d, kernel("a", 0, 10));
        c.record_kernel(d, kernel("a", 5, 15));
        c.record_kernel(d, kernel("b", 0, 15));
        let stats = c.finish();
        assert!((stats.overlap_fraction("a", "b") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_and_timeline_render() {
        let c = StepStatsCollector::new(TraceLevel::Full);
        let d = c.register_device("/machine:0/k40:0");
        c.record_node(d, node("MatMul_1", 0, 50, false));
        c.record_kernel(d, kernel("/machine:0/k40:0/compute", 0, 50));
        c.record_kernel(d, kernel("/machine:0/k40:0/d2h", 25, 75));
        c.record_frame(d, FrameStats { frame: "root".into(), iterations: 1, dead_tokens: 2 });
        c.record_rendezvous(
            d,
            RendezvousWait {
                key: "m0>m1/x".into(),
                kind: RendezvousKind::Recv,
                start_us: 0,
                wait_us: 42,
            },
        );
        c.record_transfer(TransferStats {
            key: "m0>m1/x".into(),
            bytes: 1024,
            start_us: 0,
            delay_us: 10,
        });
        let stats = c.finish();
        let report = stats.summary_report(5);
        assert!(report.contains("MatMul_1"));
        assert!(report.contains("dead tokens"));
        assert!(report.contains("network: 1 transfers"));
        let art = stats.ascii_timeline(40);
        assert!(art.contains("compute"));
        assert!(art.contains('#'));
        assert_eq!(StepStats::default().ascii_timeline(10), "(no events)\n");
    }

    #[test]
    fn worker_ordinal_is_stable_and_threads_differ() {
        let a = thread_ordinal();
        assert_eq!(a, thread_ordinal());
        let b = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn trace_level_ordering() {
        assert!(!TraceLevel::None.is_enabled());
        assert!(TraceLevel::Software.is_enabled());
        assert!(TraceLevel::Full > TraceLevel::Software);
        assert_eq!(TraceLevel::default(), TraceLevel::None);
    }
}
