//! Kernel timeline tracing (for Figure 13-style overlap reports).

use dcf_sync::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One kernel execution on one stream.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Stream label, e.g. `"gpu:0/compute"` or `"gpu:0/d2h"`.
    pub stream: String,
    /// Kernel name.
    pub kernel: String,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// End offset from the trace epoch, microseconds.
    pub end_us: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    events: Vec<TimelineEvent>,
    enabled: bool,
}

/// Collects per-stream kernel start/end times.
///
/// Shared by all streams of all devices in a run; rendering the collected
/// events per stream reproduces the paper's Figure 13 timelines and the
/// compute/I-O overlap measurement.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates a disabled tracer (recording off until
    /// [`Tracer::set_enabled`]).
    pub fn new() -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(Inner {
                epoch: Instant::now(),
                events: Vec::new(),
                enabled: false,
            })),
        }
    }

    /// Creates an enabled tracer.
    ///
    /// Deprecated: the "one process-global enabled tracer" pattern predates
    /// per-run collection. Request a trace per run via the session's
    /// `RunOptions::trace_level` and read the returned `StepStats` instead;
    /// the `Tracer` remains as an internal sink for ad-hoc stream
    /// diagnostics.
    #[deprecated(
        since = "0.2.0",
        note = "use RunOptions::trace_level and the returned StepStats instead of a globally \
                enabled Tracer"
    )]
    pub fn enabled() -> Tracer {
        let t = Tracer::new();
        t.set_enabled(true);
        t
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.lock().enabled = on;
    }

    /// Clears recorded events and resets the epoch.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.epoch = Instant::now();
        inner.events.clear();
    }

    /// Records one kernel execution.
    pub fn record(&self, stream: &str, kernel: &str, start: Instant, end: Instant) {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return;
        }
        let epoch = inner.epoch;
        inner.events.push(TimelineEvent {
            stream: stream.to_owned(),
            kernel: kernel.to_owned(),
            start_us: end_offset(epoch, start),
            end_us: end_offset(epoch, end),
        });
    }

    /// Returns a copy of all recorded events.
    pub fn snapshot(&self) -> Vec<TimelineEvent> {
        self.inner.lock().events.clone()
    }

    /// Total busy microseconds per stream.
    pub fn busy_per_stream(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        for e in self.inner.lock().events.iter() {
            *map.entry(e.stream.clone()).or_insert(0) += e.end_us - e.start_us;
        }
        map
    }

    /// Fraction of stream `a` busy time that overlaps stream `b` busy time.
    ///
    /// This quantifies the §5.3 claim that compute kernels and memory-copy
    /// kernels proceed in parallel.
    pub fn overlap_fraction(&self, a: &str, b: &str) -> f64 {
        let events = self.inner.lock().events.clone();
        let iv = |s: &str| -> Vec<(u64, u64)> {
            let mut v: Vec<(u64, u64)> =
                events.iter().filter(|e| e.stream == s).map(|e| (e.start_us, e.end_us)).collect();
            v.sort_unstable();
            v
        };
        let (ia, ib) = (iv(a), iv(b));
        let busy_a: u64 = ia.iter().map(|(s, e)| e - s).sum();
        if busy_a == 0 {
            return 0.0;
        }
        let mut overlap = 0u64;
        for &(s1, e1) in &ia {
            for &(s2, e2) in &ib {
                let s = s1.max(s2);
                let e = e1.min(e2);
                if e > s {
                    overlap += e - s;
                }
            }
        }
        overlap as f64 / busy_a as f64
    }

    /// Renders an ASCII timeline, one row per stream, `width` columns.
    pub fn render_ascii(&self, width: usize) -> String {
        let events = self.snapshot();
        if events.is_empty() {
            return String::from("(no events)\n");
        }
        let t_min = events.iter().map(|e| e.start_us).min().unwrap_or(0);
        let t_max = events.iter().map(|e| e.end_us).max().unwrap_or(1).max(t_min + 1);
        let span = (t_max - t_min) as f64;
        let mut streams: Vec<String> = events.iter().map(|e| e.stream.clone()).collect();
        streams.sort();
        streams.dedup();
        let mut out = String::new();
        for s in &streams {
            let mut row = vec![b'.'; width];
            for e in events.iter().filter(|e| &e.stream == s) {
                let a = (((e.start_us - t_min) as f64 / span) * width as f64) as usize;
                let b = (((e.end_us - t_min) as f64 / span) * width as f64).ceil() as usize;
                for c in row.iter_mut().take(b.min(width)).skip(a.min(width.saturating_sub(1))) {
                    *c = b'#';
                }
            }
            out.push_str(&format!("{:<24} {}\n", s, String::from_utf8_lossy(&row)));
        }
        out
    }
}

fn end_offset(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_micros() as u64
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn mk_event(t: &Tracer, stream: &str, start_ms: u64, end_ms: u64) {
        let epoch = t.inner.lock().epoch;
        t.record(
            stream,
            "k",
            epoch + Duration::from_millis(start_ms),
            epoch + Duration::from_millis(end_ms),
        );
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        mk_event(&t, "s", 0, 10);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn busy_accounting() {
        let t = Tracer::enabled();
        mk_event(&t, "compute", 0, 10);
        mk_event(&t, "compute", 20, 25);
        mk_event(&t, "d2h", 5, 15);
        let busy = t.busy_per_stream();
        assert_eq!(busy["compute"], 15_000);
        assert_eq!(busy["d2h"], 10_000);
    }

    #[test]
    fn overlap_fraction_computed() {
        let t = Tracer::enabled();
        mk_event(&t, "a", 0, 10);
        mk_event(&t, "b", 5, 15);
        // a is busy 10ms; 5ms of it overlaps b.
        assert!((t.overlap_fraction("a", "b") - 0.5).abs() < 1e-9);
        assert_eq!(t.overlap_fraction("missing", "b"), 0.0);
    }

    #[test]
    fn ascii_rendering_marks_busy_spans() {
        let t = Tracer::enabled();
        mk_event(&t, "compute", 0, 50);
        mk_event(&t, "d2h", 50, 100);
        let art = t.render_ascii(20);
        assert!(art.contains("compute"));
        assert!(art.contains('#'));
        let t2 = Tracer::enabled();
        assert_eq!(t2.render_ascii(10), "(no events)\n");
    }

    #[test]
    fn reset_clears() {
        let t = Tracer::enabled();
        mk_event(&t, "a", 0, 1);
        t.reset();
        assert!(t.snapshot().is_empty());
    }
}
