//! Control-flow contexts.
//!
//! Every node is associated with the innermost control-flow construct it
//! belongs to (§5.1: "Each operation in the graph is associated with a
//! 'control-flow context'"). The contexts form a tree rooted at the implicit
//! top-level context. Automatic differentiation walks this tree to generate
//! the corresponding constructs in the gradient graph, and the builder uses
//! it to capture external tensors correctly (Switch guards for conditionals,
//! Enter for loop constants).

use crate::graph::{NodeId, TensorRef};

/// Identifier of a control-flow context within a graph.
///
/// `ContextId(0)` is always the root context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(pub usize);

impl ContextId {
    /// The root (top-level) context.
    pub const ROOT: ContextId = ContextId(0);
}

/// Which branch of a conditional a context represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondBranch {
    /// The `true_fn` branch (Switch output 1).
    True,
    /// The `false_fn` branch (Switch output 0).
    False,
}

impl CondBranch {
    /// The Switch output port corresponding to this branch.
    pub fn port(self) -> usize {
        match self {
            CondBranch::True => 1,
            CondBranch::False => 0,
        }
    }
}

/// Metadata recorded for one branch context of a `cond`.
#[derive(Clone, Debug)]
pub struct CondContextInfo {
    /// The predicate tensor evaluated outside the conditional.
    pub pred: TensorRef,
    /// Which branch this context is.
    pub branch: CondBranch,
    /// Cached Switch guards for captured external tensors: pairs of
    /// (external tensor, guarded branch-side tensor).
    pub captures: Vec<(TensorRef, TensorRef)>,
    /// Branch result tensors (inputs to the output Merges), recorded when
    /// the branch finishes building.
    pub results: Vec<TensorRef>,
    /// The Merge outputs of the whole `cond` (same for both branches).
    pub merges: Vec<TensorRef>,
}

/// Metadata recorded for a `while_loop` body context.
#[derive(Clone, Debug)]
pub struct WhileContextInfo {
    /// Unique frame name.
    pub frame: String,
    /// The §4.3 parallel-iterations knob for this frame.
    pub parallel_iterations: usize,
    /// Enter nodes of the loop variables (excluding the counter).
    pub enters: Vec<TensorRef>,
    /// Merge outputs for each loop variable, in order; these are the values
    /// `pred` and `body` observe before the Switch.
    pub merges: Vec<TensorRef>,
    /// Switch body-side outputs for each loop variable (iteration inputs).
    pub body_inputs: Vec<TensorRef>,
    /// Body result tensors (inputs to NextIteration), one per loop variable.
    pub body_results: Vec<TensorRef>,
    /// Exit outputs, one per loop variable.
    pub exits: Vec<TensorRef>,
    /// The LoopCond output.
    pub loop_cond: Option<TensorRef>,
    /// Merge output of the implicit iteration counter (counts from 0).
    pub counter_merge: Option<TensorRef>,
    /// Body-side (Switch true output) value of the iteration counter: the
    /// current iteration index, available inside the body. Autodiff uses it
    /// as the stack slot index for saved intermediates.
    pub counter_body: Option<TensorRef>,
    /// Exit output of the implicit iteration counter = trip count N.
    pub counter_exit: Option<TensorRef>,
    /// Cached Enter(constant) captures: (external tensor, in-frame tensor).
    pub captures: Vec<(TensorRef, TensorRef)>,
    /// Whether intermediates saved for backpropagation through this loop
    /// are eligible for device-to-host memory swapping (§5.3).
    pub swap_memory: bool,
}

/// Metadata recorded for a function body context (see
/// [`crate::Function`]).
#[derive(Clone, Debug)]
pub struct FunctionContextInfo {
    /// Name of the function whose body this context holds.
    pub name: String,
    /// Cached captures: pairs of (external tensor, in-body implicit
    /// parameter tensor). Captured externals become trailing parameters so
    /// their values flow into every call frame as arguments.
    pub captures: Vec<(TensorRef, TensorRef)>,
}

/// The payload of a context-tree node.
#[derive(Clone, Debug)]
pub enum ContextKind {
    /// The implicit top-level context.
    Root,
    /// One branch of a `cond`.
    Cond(CondContextInfo),
    /// The body of a `while_loop`.
    While(WhileContextInfo),
    /// The body of an in-graph function.
    Function(FunctionContextInfo),
}

/// A node in the control-flow context tree.
#[derive(Clone, Debug)]
pub struct Context {
    /// This context's id.
    pub id: ContextId,
    /// Parent context (`None` only for the root).
    pub parent: Option<ContextId>,
    /// Payload.
    pub kind: ContextKind,
}

impl Context {
    /// Returns the while-context info, if this is a while context.
    pub fn as_while(&self) -> Option<&WhileContextInfo> {
        match &self.kind {
            ContextKind::While(w) => Some(w),
            _ => None,
        }
    }

    /// Returns the cond-context info, if this is a cond branch context.
    pub fn as_cond(&self) -> Option<&CondContextInfo> {
        match &self.kind {
            ContextKind::Cond(c) => Some(c),
            _ => None,
        }
    }

    /// Returns the function-context info, if this is a function body.
    pub fn as_function(&self) -> Option<&FunctionContextInfo> {
        match &self.kind {
            ContextKind::Function(f) => Some(f),
            _ => None,
        }
    }
}

/// Ancestry helpers over a slice of contexts (indexed by `ContextId`).
pub(crate) fn is_ancestor_or_self(contexts: &[Context], anc: ContextId, ctx: ContextId) -> bool {
    let mut cur = Some(ctx);
    while let Some(c) = cur {
        if c == anc {
            return true;
        }
        cur = contexts[c.0].parent;
    }
    false
}

/// Returns the chain from the root to `ctx`, inclusive.
pub(crate) fn chain_to(contexts: &[Context], ctx: ContextId) -> Vec<ContextId> {
    let mut chain = Vec::new();
    let mut cur = Some(ctx);
    while let Some(c) = cur {
        chain.push(c);
        cur = contexts[c.0].parent;
    }
    chain.reverse();
    chain
}

/// Marker for nodes not yet assigned (used during construction only).
pub(crate) const _UNUSED: Option<NodeId> = None;

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: usize, parent: Option<usize>) -> Context {
        Context { id: ContextId(id), parent: parent.map(ContextId), kind: ContextKind::Root }
    }

    #[test]
    fn ancestry() {
        let ctxs = vec![mk(0, None), mk(1, Some(0)), mk(2, Some(1)), mk(3, Some(0))];
        assert!(is_ancestor_or_self(&ctxs, ContextId(0), ContextId(2)));
        assert!(is_ancestor_or_self(&ctxs, ContextId(1), ContextId(2)));
        assert!(is_ancestor_or_self(&ctxs, ContextId(2), ContextId(2)));
        assert!(!is_ancestor_or_self(&ctxs, ContextId(3), ContextId(2)));
    }

    #[test]
    fn chains() {
        let ctxs = vec![mk(0, None), mk(1, Some(0)), mk(2, Some(1))];
        assert_eq!(chain_to(&ctxs, ContextId(2)), vec![ContextId(0), ContextId(1), ContextId(2)]);
        assert_eq!(chain_to(&ctxs, ContextId(0)), vec![ContextId(0)]);
    }

    #[test]
    fn branch_ports() {
        assert_eq!(CondBranch::True.port(), 1);
        assert_eq!(CondBranch::False.port(), 0);
    }
}
