//! Graph nodes.

use crate::context::ContextId;
use crate::graph::{NodeId, TensorRef};
use crate::op::OpKind;
use dcf_tensor::{DType, Shape};

/// One operation instance in the dataflow graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// This node's id (its index in the graph's node table).
    pub id: NodeId,
    /// Unique diagnostic name, e.g. `"while/Merge_1"`.
    pub name: String,
    /// The operation this node performs.
    pub op: OpKind,
    /// Data inputs, in operand order.
    pub inputs: Vec<TensorRef>,
    /// Control inputs: this node may not execute (in a given frame and
    /// iteration) before these nodes have executed there.
    pub control_inputs: Vec<NodeId>,
    /// Requested placement, e.g. `"/machine:0/gpu:0"`. `None` lets the
    /// placer choose.
    pub device: Option<String>,
    /// Innermost control-flow context containing this node.
    pub ctx: ContextId,
    /// Inferred dtype of each data output.
    pub out_dtypes: Vec<DType>,
    /// Statically inferred shape of each data output, where known.
    pub out_shapes: Vec<Option<Shape>>,
}

impl Node {
    /// Returns a [`TensorRef`] for output `port` of this node.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range for the op's output count.
    pub fn out(&self, port: usize) -> TensorRef {
        assert!(port < self.out_dtypes.len(), "output port {port} out of range on {}", self.name);
        TensorRef { node: self.id, port }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_tensor::Tensor;

    #[test]
    fn out_ref() {
        let n = Node {
            id: NodeId(3),
            name: "c".into(),
            op: OpKind::Const(Tensor::scalar_f32(1.0)),
            inputs: vec![],
            control_inputs: vec![],
            device: None,
            ctx: ContextId::ROOT,
            out_dtypes: vec![DType::F32],
            out_shapes: vec![None],
        };
        let r = n.out(0);
        assert_eq!(r.node, NodeId(3));
        assert_eq!(r.port, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_ref_bounds() {
        let n = Node {
            id: NodeId(0),
            name: "c".into(),
            op: OpKind::Const(Tensor::scalar_f32(1.0)),
            inputs: vec![],
            control_inputs: vec![],
            device: None,
            ctx: ContextId::ROOT,
            out_dtypes: vec![DType::F32],
            out_shapes: vec![None],
        };
        let _ = n.out(1);
    }
}
