//! Dataflow graph IR, builder API, and control-flow compilation for `dcf`.
//!
//! This crate implements the *programming model* half of the paper:
//!
//! * a dataflow **graph IR** whose nodes are operations and whose edges carry
//!   tensors ([`Graph`], [`Node`], [`OpKind`]);
//! * the five **control-flow primitives** of §4.1 — `Switch`, `Merge`,
//!   `Enter`, `Exit`, and `NextIteration` — plus `LoopCond`;
//! * the **compilation** of the high-level constructs `cond(pred, true_fn,
//!   false_fn)` and `while_loop(pred, body, inits)` into those primitives,
//!   exactly as described in §4.2 (per-external-tensor `Switch` guards for
//!   conditional branches, `Enter` for loop constants, dangling-`Merge`
//!   patching for back edges, arbitrary nesting);
//! * **`TensorArray`**, stack, and variable resource operations (§2.1, §5.1);
//! * the **higher-order functions** `scan`, `map_fn`, `foldl`, and `foldr`,
//!   defined in terms of `while_loop` and `TensorArray` as in Figure 2.
//!
//! Graphs built here are executed by `dcf-exec` (local, tagged-token
//! execution) and `dcf-runtime` (partitioned, distributed execution), and
//! differentiated by `dcf-autodiff`.
//!
//! # Examples
//!
//! Build a loop that computes `2^4` by repeated doubling:
//!
//! ```
//! use dcf_graph::{GraphBuilder, WhileOptions};
//! use dcf_tensor::Tensor;
//!
//! let mut g = GraphBuilder::new();
//! let i0 = g.constant(Tensor::scalar_i64(0));
//! let x0 = g.constant(Tensor::scalar_f32(1.0));
//! let four = g.constant(Tensor::scalar_i64(4));
//! let two = g.constant(Tensor::scalar_f32(2.0));
//! let outs = g
//!     .while_loop(
//!         &[i0, x0],
//!         |g, vars| g.less(vars[0], four),
//!         |g, vars| {
//!             let one = g.constant(Tensor::scalar_i64(1));
//!             let i = g.add(vars[0], one)?;
//!             let x = g.mul(vars[1], two)?;
//!             Ok(vec![i, x])
//!         },
//!         WhileOptions::default(),
//!     )
//!     .unwrap();
//! assert_eq!(outs.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod context;
mod control_flow;
mod error;
mod graph;
mod higher_order;
mod node;
mod op;
mod tensor_array;

pub use builder::GraphBuilder;
pub use context::{
    CondBranch, CondContextInfo, Context, ContextId, ContextKind, FunctionContextInfo,
    WhileContextInfo,
};
pub use control_flow::WhileOptions;
pub use error::GraphError;
pub use graph::{Function, Graph, NodeId, TensorRef};
pub use node::Node;
pub use op::{FusedOp, FusedSpec, FusedStep, OpKind};
pub use tensor_array::TensorArrayHandle;

/// Convenience alias for fallible graph-construction operations.
pub type Result<T> = std::result::Result<T, GraphError>;
