//! Operation kinds: the instruction set of the dataflow graph.

use dcf_tensor::{DType, Tensor};

/// The kind of a graph node.
///
/// The set comprises ordinary math/array operations, the control-flow
/// primitives of §4.1, resource operations (variables, stacks,
/// `TensorArray`s), and the communication operations (`Send`/`Recv`) that the
/// partitioner inserts (§3, §4.4).
#[derive(Clone, Debug)]
pub enum OpKind {
    // ------------------------------------------------------------------
    // Sources
    // ------------------------------------------------------------------
    /// A compile-time constant tensor.
    Const(Tensor),
    /// A value fed at `Session::run` time.
    Placeholder {
        /// Feed key.
        name: String,
        /// Element type of the fed value.
        dtype: DType,
        /// Statically known shape of the fed value, if declared.
        shape: Option<Vec<usize>>,
    },
    /// A mutable variable; holds state across executions. Output is the
    /// current value.
    Variable {
        /// Unique variable name (resource key).
        name: String,
        /// Initial value, installed on first use.
        init: Tensor,
    },
    /// Uniform random tensor in `[lo, hi)`; stateful.
    RandomUniform {
        /// Output dimensions.
        dims: Vec<usize>,
        /// Lower bound (inclusive).
        lo: f32,
        /// Upper bound (exclusive).
        hi: f32,
        /// RNG stream seed.
        seed: u64,
    },

    // ------------------------------------------------------------------
    // Elementwise / linear algebra / reductions
    // ------------------------------------------------------------------
    /// Elementwise addition with broadcasting.
    Add,
    /// Variadic addition (gradient accumulation).
    AddN,
    /// Elementwise subtraction with broadcasting.
    Sub,
    /// Elementwise multiplication with broadcasting.
    Mul,
    /// Elementwise division with broadcasting.
    Div,
    /// Elementwise maximum.
    Maximum,
    /// Elementwise minimum.
    Minimum,
    /// Elementwise negation.
    Neg,
    /// Elementwise exponential.
    Exp,
    /// Elementwise natural logarithm.
    Log,
    /// Elementwise square root.
    Sqrt,
    /// Elementwise square.
    Square,
    /// Elementwise absolute value.
    Abs,
    /// Elementwise logistic sigmoid.
    Sigmoid,
    /// Elementwise hyperbolic tangent.
    Tanh,
    /// Elementwise rectified linear unit.
    Relu,
    /// Softmax along the last axis.
    Softmax,
    /// Argmax along the last axis (returns `i64`).
    ArgMax,
    /// Matrix multiply with optional transposed operands.
    MatMul {
        /// Treat the left operand as transposed.
        transpose_a: bool,
        /// Treat the right operand as transposed.
        transpose_b: bool,
    },
    /// Rank-2 transpose.
    Transpose,
    /// Sum of all elements (scalar output).
    ReduceSumAll,
    /// Mean of all elements (scalar output).
    ReduceMeanAll,
    /// Max of all elements (scalar output).
    ReduceMaxAll,
    /// Sum along one axis.
    ReduceSumAxis {
        /// Axis (negative counts from the end).
        axis: i64,
        /// Keep the reduced axis with extent 1.
        keep_dims: bool,
    },
    /// Mean along one axis.
    ReduceMeanAxis {
        /// Axis (negative counts from the end).
        axis: i64,
        /// Keep the reduced axis with extent 1.
        keep_dims: bool,
    },
    /// Max along one axis.
    ReduceMaxAxis {
        /// Axis (negative counts from the end).
        axis: i64,
        /// Keep the reduced axis with extent 1.
        keep_dims: bool,
    },
    /// Reshape to a static shape of equal volume.
    Reshape {
        /// Target dimensions.
        dims: Vec<usize>,
    },
    /// Broadcast to a static shape.
    BroadcastTo {
        /// Target dimensions.
        dims: Vec<usize>,
    },
    /// Cast to a dtype.
    Cast {
        /// Target dtype.
        dtype: DType,
    },
    /// Identity (forwards its input).
    Identity,
    /// Identity that blocks gradient flow (e.g. into target networks).
    StopGradient,
    /// Zero tensor with the shape and dtype of the input.
    ZerosLike,
    /// One-filled `f32` tensor with the shape of the input.
    OnesLike,
    /// One-hot encoding of an `i64` tensor.
    OneHot {
        /// Number of classes.
        depth: usize,
    },

    // ------------------------------------------------------------------
    // Runtime-shaped gradient adapters (shapes taken from a `like` operand
    // at run time; used by automatic differentiation where static shapes
    // are unavailable)
    // ------------------------------------------------------------------
    /// Un-broadcasts a gradient to the shape of the second (`like`) input.
    ReduceToLike,
    /// Broadcasts a gradient to the shape of the second (`like`) input.
    BroadcastLike,
    /// Inserts a size-1 axis at `axis`.
    ExpandDims {
        /// Position of the new axis.
        axis: usize,
    },
    /// Reshapes the first input to the shape of the second (`like`) input.
    ReshapeLike,
    /// Number of elements of the input, as an `f32` scalar.
    SizeF32,
    /// Extent of `axis` of the input, as an `f32` scalar.
    DimSizeF32 {
        /// The axis measured.
        axis: usize,
    },
    /// Gradient of `Concat0` for operand `index`: slices the matching rows
    /// out of the gradient. Inputs: `(grad, like_0, ..., like_{n-1})`.
    Concat0Grad {
        /// Which operand's gradient to produce.
        index: usize,
    },
    /// Gradient of `Concat1` for operand `index`: slices the matching
    /// columns out of the gradient. Inputs: `(grad, like_0, ..., like_{n-1})`.
    Concat1Grad {
        /// Which operand's gradient to produce.
        index: usize,
    },
    /// Gradient of `Index0`: scatters the gradient row into zeros shaped
    /// like the original operand. Inputs: `(grad, like, index)`.
    Index0Grad,

    // ------------------------------------------------------------------
    // Comparison / logic / selection
    // ------------------------------------------------------------------
    /// Elementwise `<`.
    Less,
    /// Elementwise `<=`.
    LessEqual,
    /// Elementwise `>`.
    Greater,
    /// Elementwise `>=`.
    GreaterEqual,
    /// Elementwise `==`.
    Equal,
    /// Elementwise boolean AND.
    LogicalAnd,
    /// Elementwise boolean OR.
    LogicalOr,
    /// Elementwise boolean NOT.
    LogicalNot,
    /// Elementwise/scalar selection `cond ? a : b`.
    Select,

    // ------------------------------------------------------------------
    // Array manipulation
    // ------------------------------------------------------------------
    /// Concatenate along axis 0.
    Concat0,
    /// Concatenate rank-2 tensors along axis 1.
    Concat1,
    /// Split a rank-2 tensor into `n` equal column blocks (multi-output).
    Split1 {
        /// Number of parts.
        n: usize,
    },
    /// Stack equal-shaped tensors along a new leading axis.
    Pack,
    /// Extract the subtensor at a dynamic index along axis 0.
    Index0,
    /// Gather rows by an `i64` index tensor.
    Gather0,
    /// Scatter-add rows into a zero tensor of `rows` rows.
    ScatterAdd0 {
        /// Number of output rows.
        rows: usize,
    },

    // ------------------------------------------------------------------
    // Control-flow primitives (§4.1)
    // ------------------------------------------------------------------
    /// Forwards the data input to output 1 (true) or 0 (false) according to
    /// the boolean input; the untaken output is *dead*.
    Switch,
    /// Forwards the first available live input. Unlike all other ops, it is
    /// enabled as soon as *any* input is available.
    Merge,
    /// Forwards its input into a child frame.
    Enter {
        /// Name of the child frame.
        frame: String,
        /// Loop-constant promotion: the value is made available to every
        /// iteration of the frame.
        is_constant: bool,
        /// Maximum number of iterations allowed to run concurrently
        /// (the §4.3 knob; meaningful on the first Enter of a frame).
        parallel_iterations: usize,
    },
    /// Forwards a value from a frame to its parent frame.
    Exit,
    /// Forwards its input to the next iteration of its frame.
    NextIteration,
    /// Marks the loop predicate; forwards its boolean input.
    LoopCond,

    // ------------------------------------------------------------------
    // In-graph functions (lowered onto the frame machinery at run time)
    // ------------------------------------------------------------------
    /// Invokes a named [`crate::Function`]. The executor pushes a fresh
    /// dynamic frame per call site, delivers the arguments to the
    /// function's parameter nodes inside it (Enter-like), and routes the
    /// body's `FunctionRet` values back to this node's output ports
    /// (Exit-like). Any dead argument makes every output dead *without*
    /// creating a frame — which is what terminates dead recursive calls on
    /// untaken conditional branches.
    Call {
        /// Name of the called function.
        function: String,
        /// Declared result dtypes (one output port per result).
        results: Vec<DType>,
    },
    /// Formal parameter `index` of a function body: a source-like node
    /// that waits for the one argument token a `Call` injects into the
    /// call frame, then forwards it (identity).
    FunctionParam {
        /// Owning function name.
        function: String,
        /// Parameter position.
        index: usize,
        /// Declared parameter dtype.
        dtype: DType,
    },
    /// Result `index` of a function body: forwards its input to the
    /// consumers of output port `index` of the calling `Call` node, in the
    /// parent frame (Exit-like).
    FunctionRet {
        /// Owning function name.
        function: String,
        /// Result position.
        index: usize,
    },

    // ------------------------------------------------------------------
    // Stateful resource ops
    // ------------------------------------------------------------------
    /// Overwrites a variable with the input value; outputs the new value.
    Assign {
        /// Target variable name.
        var: String,
    },
    /// Adds the input to a variable; outputs the new value.
    AssignAdd {
        /// Target variable name.
        var: String,
    },
    /// Subtracts the input from a variable; outputs the new value.
    AssignSub {
        /// Target variable name.
        var: String,
    },
    /// Creates a stack resource; outputs an `i64` handle.
    ///
    /// Stacks save forward-pass intermediates for reuse during
    /// backpropagation (§5.1). They are *index-addressed*: each push/pop
    /// carries an explicit slot index (the loop iteration counter), which
    /// preserves the paper's push/pop pairing while making the operations
    /// order-independent and therefore safe under parallel iterations. The
    /// paper notes the XLA compiler performs the same lowering of stacks to
    /// indexed arrays.
    StackCreate {
        /// Eligible for device-to-host memory swapping (§5.3).
        swap: bool,
    },
    /// Pushes `value` into slot `index`; forwards `value`.
    StackPush,
    /// Pops the value in slot `index`.
    StackPop,

    // ------------------------------------------------------------------
    // TensorArray ops (§2.1, §5.2)
    // ------------------------------------------------------------------
    /// Creates a TensorArray of dynamic size; outputs `(handle, flow)`.
    TensorArrayNew {
        /// Element dtype.
        dtype: DType,
        /// Whether writes accumulate into existing values (gradient arrays)
        /// instead of requiring write-once semantics.
        accumulate: bool,
    },
    /// Writes `value` at `index`; inputs `(handle, index, value, flow)`,
    /// outputs the updated flow.
    TensorArrayWrite,
    /// Reads the element at `index`; inputs `(handle, index, flow)`.
    TensorArrayRead,
    /// Stacks all elements into one tensor; inputs `(handle, flow)`.
    TensorArrayPack,
    /// Unstacks a tensor into the array; inputs `(handle, value, flow)`,
    /// outputs the updated flow.
    TensorArrayUnpack,
    /// Number of elements; inputs `(handle, flow)`, outputs `i64`.
    TensorArraySize,
    /// Looks up or creates the gradient TensorArray for a handle; inputs
    /// `(handle, flow)`, outputs `(grad_handle, flow)`.
    TensorArrayGrad {
        /// Disambiguates multiple gradient computations from one forward
        /// array.
        source: String,
    },

    // ------------------------------------------------------------------
    // Stream state ops (serving-tier recurrent state)
    // ------------------------------------------------------------------
    /// Gathers one `[1, dims…]` state row per stream in the fed slot batch.
    /// Input: stream slot handles as `i64` `[B]`; output: `[B, dims…]`
    /// `f32`. The slots are minted by the serving layer (see
    /// `ResourceManager::stream_create` in `dcf-exec`), so a retired
    /// stream's handle can only error, never read another stream's state.
    StreamStateRead {
        /// Name of the per-stream state cell (e.g. `"h"`, `"c"`).
        cell: String,
    },
    /// Scatters the rows of `value` back into the per-stream state cells.
    /// Inputs: `(slots [B] i64, value [B, dims…])`; forwards `value`, so
    /// fetching the output forces the write.
    StreamStateWrite {
        /// Name of the per-stream state cell (e.g. `"h"`, `"c"`).
        cell: String,
    },

    // ------------------------------------------------------------------
    // Communication (inserted by the partitioner, §3/§4.4)
    // ------------------------------------------------------------------
    /// Publishes its input under a rendezvous key derived from `key_base`
    /// and the dynamic frame tag. No data output.
    Send {
        /// Static half of the rendezvous key.
        key_base: String,
        /// Index of the receiving device.
        to_device: usize,
    },
    /// Pulls the tensor published under its rendezvous key; a source node.
    Recv {
        /// Static half of the rendezvous key.
        key_base: String,
        /// Index of the sending device.
        from_device: usize,
        /// Dtype of the received tensor.
        dtype: DType,
    },

    // ------------------------------------------------------------------
    // Miscellaneous
    // ------------------------------------------------------------------
    /// No-op used as a control-dependency anchor.
    NoOp,
    /// A source that emits one live signal when its frame starts. Used by
    /// the partition-local control-loop state machine (§4.4).
    ControlTrigger,

    /// A straight-line elementwise program produced by the fusion pass.
    ///
    /// Replaces a chain of `f32` elementwise nodes with one node executed
    /// by a single interpreter kernel (one output allocation instead of one
    /// per chain link, one scheduler activation instead of N). Never built
    /// by `GraphBuilder`; only the optimizer creates these.
    Fused(FusedSpec),
}

/// A primitive scalar operation inside a [`FusedSpec`] program.
///
/// The set mirrors the pure `f32` elementwise subset of [`OpKind`] that
/// the fusion pass is allowed to collapse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants mirror the identically-named OpKind ops
pub enum FusedOp {
    Add,
    Sub,
    Mul,
    Div,
    Maximum,
    Minimum,
    Neg,
    Exp,
    Log,
    Sqrt,
    Square,
    Abs,
    Sigmoid,
    Tanh,
    Relu,
}

impl FusedOp {
    /// Number of scalar operands (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            FusedOp::Add
            | FusedOp::Sub
            | FusedOp::Mul
            | FusedOp::Div
            | FusedOp::Maximum
            | FusedOp::Minimum => 2,
            _ => 1,
        }
    }

    /// Short stable name (used in fused-node labels).
    pub fn name(&self) -> &'static str {
        match self {
            FusedOp::Add => "Add",
            FusedOp::Sub => "Sub",
            FusedOp::Mul => "Mul",
            FusedOp::Div => "Div",
            FusedOp::Maximum => "Maximum",
            FusedOp::Minimum => "Minimum",
            FusedOp::Neg => "Neg",
            FusedOp::Exp => "Exp",
            FusedOp::Log => "Log",
            FusedOp::Sqrt => "Sqrt",
            FusedOp::Square => "Square",
            FusedOp::Abs => "Abs",
            FusedOp::Sigmoid => "Sigmoid",
            FusedOp::Tanh => "Tanh",
            FusedOp::Relu => "Relu",
        }
    }

    /// Maps a fusable [`OpKind`] to its scalar primitive; `None` for ops
    /// the fusion pass must not touch.
    pub fn from_op_kind(op: &OpKind) -> Option<FusedOp> {
        match op {
            OpKind::Add => Some(FusedOp::Add),
            OpKind::Sub => Some(FusedOp::Sub),
            OpKind::Mul => Some(FusedOp::Mul),
            OpKind::Div => Some(FusedOp::Div),
            OpKind::Maximum => Some(FusedOp::Maximum),
            OpKind::Minimum => Some(FusedOp::Minimum),
            OpKind::Neg => Some(FusedOp::Neg),
            OpKind::Exp => Some(FusedOp::Exp),
            OpKind::Log => Some(FusedOp::Log),
            OpKind::Sqrt => Some(FusedOp::Sqrt),
            OpKind::Square => Some(FusedOp::Square),
            OpKind::Abs => Some(FusedOp::Abs),
            OpKind::Sigmoid => Some(FusedOp::Sigmoid),
            OpKind::Tanh => Some(FusedOp::Tanh),
            OpKind::Relu => Some(FusedOp::Relu),
            _ => None,
        }
    }

    /// Applies the scalar primitive (`b` is ignored for unary ops).
    #[inline]
    pub fn apply(&self, a: f32, b: f32) -> f32 {
        match self {
            FusedOp::Add => a + b,
            FusedOp::Sub => a - b,
            FusedOp::Mul => a * b,
            FusedOp::Div => a / b,
            FusedOp::Maximum => a.max(b),
            FusedOp::Minimum => a.min(b),
            FusedOp::Neg => -a,
            FusedOp::Exp => a.exp(),
            FusedOp::Log => a.ln(),
            FusedOp::Sqrt => a.sqrt(),
            FusedOp::Square => a * a,
            FusedOp::Abs => a.abs(),
            FusedOp::Sigmoid => 1.0 / (1.0 + (-a).exp()),
            FusedOp::Tanh => a.tanh(),
            FusedOp::Relu => a.max(0.0),
        }
    }
}

/// One step of a fused program: three-address code over a register file.
///
/// Registers `0..n_inputs` hold the node's data inputs; register
/// `n_inputs + k` holds the result of step `k`. The node's single output
/// is the last step's register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FusedStep {
    /// The scalar primitive.
    pub op: FusedOp,
    /// First operand register.
    pub a: usize,
    /// Second operand register (ignored when `op` is unary).
    pub b: usize,
}

/// The program carried by an [`OpKind::Fused`] node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FusedSpec {
    /// Number of external data inputs (registers `0..n_inputs`).
    pub n_inputs: usize,
    /// The straight-line program; never empty.
    pub steps: Vec<FusedStep>,
    /// Human-readable summary, e.g. `"Mul+Add+Tanh"`. Derived
    /// deterministically from `steps`, so equal programs have equal labels.
    pub label: String,
}

impl FusedSpec {
    /// The register index holding the node's output.
    pub fn output_register(&self) -> usize {
        self.n_inputs + self.steps.len() - 1
    }
}

impl OpKind {
    /// Returns a short stable name for display and rendezvous keys.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Const(_) => "Const",
            OpKind::Placeholder { .. } => "Placeholder",
            OpKind::Variable { .. } => "Variable",
            OpKind::RandomUniform { .. } => "RandomUniform",
            OpKind::Add => "Add",
            OpKind::AddN => "AddN",
            OpKind::Sub => "Sub",
            OpKind::Mul => "Mul",
            OpKind::Div => "Div",
            OpKind::Maximum => "Maximum",
            OpKind::Minimum => "Minimum",
            OpKind::Neg => "Neg",
            OpKind::Exp => "Exp",
            OpKind::Log => "Log",
            OpKind::Sqrt => "Sqrt",
            OpKind::Square => "Square",
            OpKind::Abs => "Abs",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Tanh => "Tanh",
            OpKind::Relu => "Relu",
            OpKind::Softmax => "Softmax",
            OpKind::ArgMax => "ArgMax",
            OpKind::MatMul { .. } => "MatMul",
            OpKind::Transpose => "Transpose",
            OpKind::ReduceSumAll => "ReduceSumAll",
            OpKind::ReduceMeanAll => "ReduceMeanAll",
            OpKind::ReduceMaxAll => "ReduceMaxAll",
            OpKind::ReduceSumAxis { .. } => "ReduceSumAxis",
            OpKind::ReduceMeanAxis { .. } => "ReduceMeanAxis",
            OpKind::ReduceMaxAxis { .. } => "ReduceMaxAxis",
            OpKind::Reshape { .. } => "Reshape",
            OpKind::BroadcastTo { .. } => "BroadcastTo",
            OpKind::Cast { .. } => "Cast",
            OpKind::Identity => "Identity",
            OpKind::StopGradient => "StopGradient",
            OpKind::ZerosLike => "ZerosLike",
            OpKind::OnesLike => "OnesLike",
            OpKind::OneHot { .. } => "OneHot",
            OpKind::ReduceToLike => "ReduceToLike",
            OpKind::BroadcastLike => "BroadcastLike",
            OpKind::ExpandDims { .. } => "ExpandDims",
            OpKind::ReshapeLike => "ReshapeLike",
            OpKind::SizeF32 => "SizeF32",
            OpKind::DimSizeF32 { .. } => "DimSizeF32",
            OpKind::Concat0Grad { .. } => "Concat0Grad",
            OpKind::Concat1Grad { .. } => "Concat1Grad",
            OpKind::Index0Grad => "Index0Grad",
            OpKind::Less => "Less",
            OpKind::LessEqual => "LessEqual",
            OpKind::Greater => "Greater",
            OpKind::GreaterEqual => "GreaterEqual",
            OpKind::Equal => "Equal",
            OpKind::LogicalAnd => "LogicalAnd",
            OpKind::LogicalOr => "LogicalOr",
            OpKind::LogicalNot => "LogicalNot",
            OpKind::Select => "Select",
            OpKind::Concat0 => "Concat0",
            OpKind::Concat1 => "Concat1",
            OpKind::Split1 { .. } => "Split1",
            OpKind::Pack => "Pack",
            OpKind::Index0 => "Index0",
            OpKind::Gather0 => "Gather0",
            OpKind::ScatterAdd0 { .. } => "ScatterAdd0",
            OpKind::Switch => "Switch",
            OpKind::Merge => "Merge",
            OpKind::Enter { .. } => "Enter",
            OpKind::Exit => "Exit",
            OpKind::NextIteration => "NextIteration",
            OpKind::LoopCond => "LoopCond",
            OpKind::Call { .. } => "Call",
            OpKind::FunctionParam { .. } => "FunctionParam",
            OpKind::FunctionRet { .. } => "FunctionRet",
            OpKind::Assign { .. } => "Assign",
            OpKind::AssignAdd { .. } => "AssignAdd",
            OpKind::AssignSub { .. } => "AssignSub",
            OpKind::StackCreate { .. } => "StackCreate",
            OpKind::StackPush => "StackPush",
            OpKind::StackPop => "StackPop",
            OpKind::TensorArrayNew { .. } => "TensorArrayNew",
            OpKind::TensorArrayWrite => "TensorArrayWrite",
            OpKind::TensorArrayRead => "TensorArrayRead",
            OpKind::TensorArrayPack => "TensorArrayPack",
            OpKind::TensorArrayUnpack => "TensorArrayUnpack",
            OpKind::TensorArraySize => "TensorArraySize",
            OpKind::TensorArrayGrad { .. } => "TensorArrayGrad",
            OpKind::StreamStateRead { .. } => "StreamStateRead",
            OpKind::StreamStateWrite { .. } => "StreamStateWrite",
            OpKind::Send { .. } => "Send",
            OpKind::Recv { .. } => "Recv",
            OpKind::NoOp => "NoOp",
            OpKind::ControlTrigger => "ControlTrigger",
            OpKind::Fused(_) => "Fused",
        }
    }

    /// Returns the number of data outputs of this op.
    pub fn num_outputs(&self) -> usize {
        match self {
            OpKind::Switch => 2,
            OpKind::Split1 { n } => *n,
            OpKind::Call { results, .. } => results.len(),
            OpKind::TensorArrayNew { .. } => 2,
            OpKind::TensorArrayGrad { .. } => 2,
            OpKind::Send { .. } | OpKind::NoOp => 0,
            OpKind::ControlTrigger => 0,
            _ => 1,
        }
    }

    /// Returns `true` if this op is one of the five control-flow primitives
    /// (or `LoopCond`), or one of the function-call ops that the executor
    /// likewise lowers onto the frame machinery.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            OpKind::Switch
                | OpKind::Merge
                | OpKind::Enter { .. }
                | OpKind::Exit
                | OpKind::NextIteration
                | OpKind::LoopCond
                | OpKind::Call { .. }
                | OpKind::FunctionParam { .. }
                | OpKind::FunctionRet { .. }
        )
    }

    /// Returns `true` if the op has side effects and must not be pruned.
    pub fn is_stateful(&self) -> bool {
        matches!(
            self,
            OpKind::Variable { .. }
                | OpKind::RandomUniform { .. }
                | OpKind::Assign { .. }
                | OpKind::AssignAdd { .. }
                | OpKind::AssignSub { .. }
                | OpKind::StackCreate { .. }
                | OpKind::StackPush
                | OpKind::StackPop
                | OpKind::TensorArrayNew { .. }
                | OpKind::TensorArrayWrite
                | OpKind::TensorArrayRead
                | OpKind::TensorArrayPack
                | OpKind::TensorArrayUnpack
                | OpKind::TensorArraySize
                | OpKind::TensorArrayGrad { .. }
                | OpKind::StreamStateRead { .. }
                | OpKind::StreamStateWrite { .. }
                | OpKind::Send { .. }
                | OpKind::Recv { .. }
        )
    }

    /// Returns `true` for ops whose dead inputs are forwarded rather than
    /// propagated (only `Merge`, per Figure 5).
    pub fn is_merge(&self) -> bool {
        matches!(self, OpKind::Merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_counts() {
        assert_eq!(OpKind::Switch.num_outputs(), 2);
        assert_eq!(OpKind::Split1 { n: 4 }.num_outputs(), 4);
        assert_eq!(OpKind::Add.num_outputs(), 1);
        assert_eq!(OpKind::Send { key_base: "k".into(), to_device: 1 }.num_outputs(), 0);
        assert_eq!(
            OpKind::TensorArrayNew { dtype: DType::F32, accumulate: false }.num_outputs(),
            2
        );
    }

    #[test]
    fn classification() {
        assert!(OpKind::Merge.is_control_flow());
        assert!(OpKind::Merge.is_merge());
        assert!(!OpKind::Add.is_control_flow());
        assert!(OpKind::StackPush.is_stateful());
        assert!(!OpKind::MatMul { transpose_a: false, transpose_b: false }.is_stateful());
        assert!(OpKind::Enter { frame: "f".into(), is_constant: false, parallel_iterations: 32 }
            .is_control_flow());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(OpKind::NextIteration.name(), "NextIteration");
        assert_eq!(OpKind::Const(Tensor::scalar_f32(0.0)).name(), "Const");
    }
}
