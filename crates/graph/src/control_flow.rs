//! Compilation of `cond` and `while_loop` onto the dataflow primitives.
//!
//! This module implements §4.2 of the paper. `cond` lowers onto `Switch` and
//! `Merge` only; `while_loop` lowers onto `Enter`, `Merge`, `Switch`,
//! `NextIteration`, and `Exit` per loop variable (Figure 4), with an
//! implicit iteration counter added for automatic differentiation (§5.1).
//! Constructs nest arbitrarily.

use crate::context::{CondBranch, ContextKind};
use crate::error::GraphError;
use crate::graph::TensorRef;
use crate::op::OpKind;
use crate::{GraphBuilder, Result};
use dcf_tensor::{DType, Tensor};

/// A deferred branch-body builder, as accepted by [`GraphBuilder::case`].
pub type BranchFn<'a> = Box<dyn FnOnce(&mut GraphBuilder) -> Result<Vec<TensorRef>> + 'a>;

/// Options for [`GraphBuilder::while_loop`].
#[derive(Clone, Debug)]
pub struct WhileOptions {
    /// Maximum number of loop iterations allowed to run concurrently — the
    /// §4.3 knob. The paper finds 32 works well in general.
    pub parallel_iterations: usize,
    /// Marks intermediate values saved for backpropagation through this
    /// loop as eligible for device-to-host memory swapping (§5.3).
    pub swap_memory: bool,
    /// Optional frame-name prefix for diagnostics.
    pub name: Option<String>,
}

impl Default for WhileOptions {
    fn default() -> Self {
        WhileOptions { parallel_iterations: 32, swap_memory: false, name: None }
    }
}

impl GraphBuilder {
    /// Builds a conditional computation: returns the outputs of `true_fn`
    /// when `pred` is true at run time, otherwise those of `false_fn`.
    ///
    /// Both functions must return the same number of tensors with matching
    /// dtypes. Per §4.2, each external tensor consumed by a branch gets its
    /// own `Switch` guard (inserted lazily by capture) so that operations in
    /// a branch only execute when the branch is taken, and each output pair
    /// is joined by a `Merge` enabling downstream computation as soon as the
    /// taken branch's value is ready.
    pub fn cond(
        &mut self,
        pred: TensorRef,
        true_fn: impl FnOnce(&mut GraphBuilder) -> Result<Vec<TensorRef>>,
        false_fn: impl FnOnce(&mut GraphBuilder) -> Result<Vec<TensorRef>>,
    ) -> Result<Vec<TensorRef>> {
        let pred = self.capture(pred)?;
        if self.graph().dtype(pred) != DType::Bool {
            return Err(GraphError::dtype("cond pred", DType::Bool, self.graph().dtype(pred)));
        }
        let parent = self.current_ctx();

        // True branch.
        let t_info = self.fresh_cond_info(pred, CondBranch::True);
        let t_ctx = self.push_context(ContextKind::Cond(t_info));
        let t_raw = true_fn(self)?;
        // Guard any branch output that was not produced inside the branch,
        // so the Merge only receives it when the branch is taken.
        let t_results: Vec<TensorRef> =
            t_raw.into_iter().map(|t| self.capture(t)).collect::<Result<_>>()?;
        self.pop_context();

        // False branch.
        let f_info = self.fresh_cond_info(pred, CondBranch::False);
        let f_ctx = self.push_context(ContextKind::Cond(f_info));
        let f_raw = false_fn(self)?;
        let f_results: Vec<TensorRef> =
            f_raw.into_iter().map(|t| self.capture(t)).collect::<Result<_>>()?;
        self.pop_context();

        if t_results.len() != f_results.len() {
            return Err(GraphError::ControlFlow(format!(
                "cond branches return {} vs {} outputs",
                t_results.len(),
                f_results.len()
            )));
        }
        for (t, f) in t_results.iter().zip(&f_results) {
            let (dt, df) = (self.graph().dtype(*t), self.graph().dtype(*f));
            if dt != df {
                return Err(GraphError::ControlFlow(format!(
                    "cond branch output dtypes differ: {dt} vs {df}"
                )));
            }
        }

        // Merge each output pair in the parent context.
        let mut merges = Vec::with_capacity(t_results.len());
        for (t, f) in t_results.iter().zip(&f_results) {
            let m = self.add_node_raw(OpKind::Merge, vec![*t, *f], parent, "CondMerge")?;
            merges.push(TensorRef { node: m, port: 0 });
        }

        // Record branch metadata for automatic differentiation.
        for (ctx, results) in [(t_ctx, &t_results), (f_ctx, &f_results)] {
            if let ContextKind::Cond(info) = self.context_info_mut(ctx) {
                info.results = results.clone();
                info.merges = merges.clone();
            }
        }
        Ok(merges)
    }

    /// Builds an iterative computation (Figure 4).
    ///
    /// `inits` supplies the initial loop-variable values. `pred` receives
    /// the current loop variables and must return a scalar boolean; `body`
    /// receives the current loop variables and returns their updated values
    /// (same count and dtypes). Returns the final values (the `Exit`
    /// outputs).
    ///
    /// An implicit iteration counter is threaded through the loop as an
    /// extra variable; automatic differentiation uses it as the trip count
    /// and as the stack index for saved intermediates (§5.1).
    pub fn while_loop(
        &mut self,
        inits: &[TensorRef],
        pred: impl FnOnce(&mut GraphBuilder, &[TensorRef]) -> Result<TensorRef>,
        body: impl FnOnce(&mut GraphBuilder, &[TensorRef]) -> Result<Vec<TensorRef>>,
        options: WhileOptions,
    ) -> Result<Vec<TensorRef>> {
        if inits.is_empty() {
            return Err(GraphError::ControlFlow(
                "while_loop requires at least one loop variable".into(),
            ));
        }
        let parent = self.current_ctx();
        let inits: Vec<TensorRef> =
            inits.iter().map(|t| self.capture(*t)).collect::<Result<_>>()?;

        // The counter's initial value lives in the parent context.
        let zero = self.add_node_raw(
            OpKind::Const(Tensor::scalar_i64(0)),
            vec![],
            crate::context::ContextId::ROOT,
            "WhileCounterInit",
        )?;
        let zero = self.capture(TensorRef { node: zero, port: 0 })?;

        let frame =
            format!("{}_frame_{}", options.name.as_deref().unwrap_or("while"), self.graph().len());
        let info = self.fresh_while_info_swap(
            frame.clone(),
            options.parallel_iterations,
            options.swap_memory,
        );
        let wctx = self.push_context(ContextKind::While(info));

        // Enter per loop variable (counter first).
        let mk_enter = |b: &mut GraphBuilder, v: TensorRef| {
            b.add_node_raw(
                OpKind::Enter {
                    frame: frame.clone(),
                    is_constant: false,
                    parallel_iterations: options.parallel_iterations,
                },
                vec![v],
                wctx,
                "Enter",
            )
        };
        let counter_enter = TensorRef { node: mk_enter(self, zero)?, port: 0 };
        let mut enters = Vec::with_capacity(inits.len());
        for &v in &inits {
            enters.push(TensorRef { node: mk_enter(self, v)?, port: 0 });
        }

        // Merge per loop variable; the second input is a dangling self-loop
        // patched to the NextIteration below.
        let mk_merge = |b: &mut GraphBuilder, e: TensorRef| {
            b.add_node_raw(OpKind::Merge, vec![e, e], wctx, "Merge")
        };
        let counter_merge_id = mk_merge(self, counter_enter)?;
        let counter_merge = TensorRef { node: counter_merge_id, port: 0 };
        let mut merges = Vec::with_capacity(inits.len());
        for &e in &enters {
            let m = mk_merge(self, e)?;
            merges.push(TensorRef { node: m, port: 0 });
        }

        // Predicate (built inside the frame on the merged variables).
        let p = pred(self, &merges)?;
        let p = self.capture(p)?;
        if self.graph().dtype(p) != DType::Bool {
            return Err(GraphError::dtype("while pred", DType::Bool, self.graph().dtype(p)));
        }
        let loop_cond = TensorRef {
            node: self.add_node_raw(OpKind::LoopCond, vec![p], wctx, "LoopCond")?,
            port: 0,
        };

        // Switch per loop variable: port 1 (true) continues into the body,
        // port 0 (false) exits.
        let mk_switch = |b: &mut GraphBuilder, m: TensorRef| {
            b.add_node_raw(OpKind::Switch, vec![m, loop_cond], wctx, "Switch")
        };
        let counter_switch = mk_switch(self, counter_merge)?;
        let mut switches = Vec::with_capacity(inits.len());
        for &m in &merges {
            switches.push(mk_switch(self, m)?);
        }
        let body_inputs: Vec<TensorRef> =
            switches.iter().map(|&s| TensorRef { node: s, port: 1 }).collect();

        // Counter increment.
        let one = self.add_node_raw(
            OpKind::Const(Tensor::scalar_i64(1)),
            vec![],
            crate::context::ContextId::ROOT,
            "WhileCounterOne",
        )?;
        let one = self.capture(TensorRef { node: one, port: 0 })?;
        let counter_body = TensorRef { node: counter_switch, port: 1 };
        let counter_next = TensorRef {
            node: self.add_node_raw(OpKind::Add, vec![counter_body, one], wctx, "CounterAdd")?,
            port: 0,
        };

        // Body.
        let body_raw = body(self, &body_inputs)?;
        if body_raw.len() != inits.len() {
            return Err(GraphError::ControlFlow(format!(
                "while body returns {} values for {} loop variables",
                body_raw.len(),
                inits.len()
            )));
        }
        let body_results: Vec<TensorRef> =
            body_raw.into_iter().map(|t| self.capture(t)).collect::<Result<_>>()?;
        for (i, (r, init)) in body_results.iter().zip(&inits).enumerate() {
            let (dr, di) = (self.graph().dtype(*r), self.graph().dtype(*init));
            if dr != di {
                return Err(GraphError::ControlFlow(format!(
                    "loop variable {i} changes dtype in body: {di} -> {dr}"
                )));
            }
        }

        // NextIteration per variable; patch the dangling Merge inputs.
        let counter_ni = TensorRef {
            node: self.add_node_raw(OpKind::NextIteration, vec![counter_next], wctx, "NextIter")?,
            port: 0,
        };
        self.patch_input(counter_merge_id, 1, counter_ni);
        for (i, &r) in body_results.iter().enumerate() {
            let ni = TensorRef {
                node: self.add_node_raw(OpKind::NextIteration, vec![r], wctx, "NextIter")?,
                port: 0,
            };
            self.patch_input(merges[i].node, 1, ni);
        }

        // Exit per variable, placed in the parent context.
        let counter_exit = TensorRef {
            node: self.add_node_raw(
                OpKind::Exit,
                vec![TensorRef { node: counter_switch, port: 0 }],
                parent,
                "Exit",
            )?,
            port: 0,
        };
        let mut exits = Vec::with_capacity(inits.len());
        for &s in &switches {
            let e = self.add_node_raw(
                OpKind::Exit,
                vec![TensorRef { node: s, port: 0 }],
                parent,
                "Exit",
            )?;
            exits.push(TensorRef { node: e, port: 0 });
        }

        self.pop_context();

        if let ContextKind::While(info) = self.context_info_mut(wctx) {
            info.enters = enters;
            info.merges = merges;
            info.body_inputs = body_inputs;
            info.body_results = body_results;
            info.exits = exits.clone();
            info.loop_cond = Some(loop_cond);
            info.counter_merge = Some(counter_merge);
            info.counter_body = Some(counter_body);
            info.counter_exit = Some(counter_exit);
        }
        Ok(exits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn count_ops(g: &GraphBuilder, name: &str) -> usize {
        g.graph().nodes().iter().filter(|n| n.op.name() == name).count()
    }

    #[test]
    fn cond_structure() {
        let mut g = GraphBuilder::new();
        let p = g.constant(Tensor::scalar_bool(true));
        let x = g.scalar_f32(1.0);
        let outs = g
            .cond(
                p,
                |g| {
                    let y = g.neg(x)?;
                    Ok(vec![y])
                },
                |g| {
                    let two = g.scalar_f32(2.0);
                    let y = g.mul(x, two)?;
                    Ok(vec![y])
                },
            )
            .unwrap();
        assert_eq!(outs.len(), 1);
        // x is captured once per branch, and the false branch's constant
        // `2.0` is guarded too -> 3 guard Switches; one Merge.
        assert_eq!(count_ops(&g, "Switch"), 3);
        assert_eq!(count_ops(&g, "Merge"), 1);
        g.finish().unwrap();
    }

    #[test]
    fn cond_capture_is_cached_per_branch() {
        let mut g = GraphBuilder::new();
        let p = g.constant(Tensor::scalar_bool(false));
        let x = g.scalar_f32(1.0);
        g.cond(
            p,
            |g| {
                // Two uses of x inside one branch share one guard.
                let a = g.neg(x)?;
                let b = g.add(a, x)?;
                Ok(vec![b])
            },
            |g| Ok(vec![g.identity(x)?]),
        )
        .unwrap();
        assert_eq!(count_ops(&g, "Switch"), 2);
    }

    #[test]
    fn cond_branch_mismatches_rejected() {
        let mut g = GraphBuilder::new();
        let p = g.constant(Tensor::scalar_bool(true));
        let x = g.scalar_f32(1.0);
        let i = g.scalar_i64(1);
        // Different output counts.
        let r =
            g.cond(p, |g| Ok(vec![g.identity(x)?, g.identity(x)?]), |g| Ok(vec![g.identity(x)?]));
        assert!(r.is_err());
        // Different dtypes.
        let r = g.cond(p, |g| Ok(vec![g.identity(x)?]), |g| Ok(vec![g.identity(i)?]));
        assert!(r.is_err());
        // Non-boolean predicate.
        let r = g.cond(x, |g| Ok(vec![g.identity(x)?]), |g| Ok(vec![g.identity(x)?]));
        assert!(r.is_err());
    }

    #[test]
    fn while_structure_matches_figure_4() {
        let mut g = GraphBuilder::new();
        let i0 = g.scalar_i64(0);
        let n = g.scalar_i64(10);
        let outs = g
            .while_loop(
                &[i0],
                |g, vars| g.less(vars[0], n),
                |g, vars| {
                    let one = g.scalar_i64(1);
                    Ok(vec![g.add(vars[0], one)?])
                },
                WhileOptions::default(),
            )
            .unwrap();
        assert_eq!(outs.len(), 1);
        // Counter + 1 loop variable: 2 each of Merge/Switch/NextIteration/
        // Exit, plus Enters: 2 variable Enters + constant Enters for the
        // captured `n` and the body constant `one`.
        assert_eq!(count_ops(&g, "Merge"), 2);
        assert_eq!(count_ops(&g, "Switch"), 2);
        assert_eq!(count_ops(&g, "NextIteration"), 2);
        assert_eq!(count_ops(&g, "Exit"), 2);
        assert_eq!(count_ops(&g, "LoopCond"), 1);
        let graph = g.finish().unwrap();
        graph.validate().unwrap();
        // Back edges close: each Merge's second input is a NextIteration.
        for node in graph.nodes() {
            if matches!(node.op, OpKind::Merge) {
                let back = graph.node(node.inputs[1].node);
                assert!(matches!(back.op, OpKind::NextIteration), "unpatched Merge {}", node.name);
            }
        }
    }

    #[test]
    fn while_captures_external_as_loop_constant() {
        let mut g = GraphBuilder::new();
        let x = g.scalar_f32(3.0);
        let i0 = g.scalar_i64(0);
        let lim = g.scalar_i64(4);
        g.while_loop(
            &[i0],
            |g, vars| g.less(vars[0], lim),
            |g, vars| {
                // `x` is external: must arrive via a constant Enter.
                let _ = g.neg(x)?;
                let one = g.scalar_i64(1);
                Ok(vec![g.add(vars[0], one)?])
            },
            WhileOptions::default(),
        )
        .unwrap();
        let has_const_enter = g
            .graph()
            .nodes()
            .iter()
            .any(|n| matches!(&n.op, OpKind::Enter { is_constant: true, .. }));
        assert!(has_const_enter);
    }

    #[test]
    fn while_body_arity_and_dtype_checked() {
        let mut g = GraphBuilder::new();
        let i0 = g.scalar_i64(0);
        let lim = g.scalar_i64(4);
        let r = g.while_loop(
            &[i0],
            |g, vars| g.less(vars[0], lim),
            |g, vars| Ok(vec![vars[0], g.scalar_i64(0)]),
            WhileOptions::default(),
        );
        assert!(r.is_err());
        let r = g.while_loop(
            &[i0],
            |g, vars| g.less(vars[0], lim),
            |g, _| Ok(vec![g.scalar_f32(0.0)]),
            WhileOptions::default(),
        );
        assert!(r.is_err());
        let r = g.while_loop(
            &[],
            |g, _| Ok(g.constant(Tensor::scalar_bool(false))),
            |_, _| Ok(vec![]),
            WhileOptions::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn nested_while_inside_while() {
        let mut g = GraphBuilder::new();
        let i0 = g.scalar_i64(0);
        let lim = g.scalar_i64(3);
        let outs = g
            .while_loop(
                &[i0],
                |g, vars| g.less(vars[0], lim),
                |g, vars| {
                    let inner_init = g.scalar_i64(0);
                    let inner = g.while_loop(
                        &[inner_init],
                        |g, ivars| g.less(ivars[0], vars[0]),
                        |g, ivars| {
                            let one = g.scalar_i64(1);
                            Ok(vec![g.add(ivars[0], one)?])
                        },
                        WhileOptions::default(),
                    )?;
                    let one = g.scalar_i64(1);
                    let next = g.add(vars[0], one)?;
                    let _ = inner;
                    Ok(vec![next])
                },
                WhileOptions::default(),
            )
            .unwrap();
        assert_eq!(outs.len(), 1);
        let graph = g.finish().unwrap();
        graph.validate().unwrap();
        graph.topo_order().unwrap();
        // Two distinct frames exist.
        let frames: std::collections::HashSet<String> = graph
            .nodes()
            .iter()
            .filter_map(|n| match &n.op {
                OpKind::Enter { frame, .. } => Some(frame.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn cond_inside_while() {
        let mut g = GraphBuilder::new();
        let i0 = g.scalar_i64(0);
        let lim = g.scalar_i64(5);
        let outs = g
            .while_loop(
                &[i0],
                |g, vars| g.less(vars[0], lim),
                |g, vars| {
                    let two = g.scalar_i64(2);
                    let one = g.scalar_i64(1);
                    let parity = g.equal(vars[0], two)?;
                    let stepped = g.cond(
                        parity,
                        |g| Ok(vec![g.add(vars[0], two)?]),
                        |g| Ok(vec![g.add(vars[0], one)?]),
                    )?;
                    Ok(vec![stepped[0]])
                },
                WhileOptions::default(),
            )
            .unwrap();
        assert_eq!(outs.len(), 1);
        g.finish().unwrap().validate().unwrap();
    }

    #[test]
    fn sibling_branch_use_rejected() {
        let mut g = GraphBuilder::new();
        let p = g.constant(Tensor::scalar_bool(true));
        let x = g.scalar_f32(1.0);
        let mut leaked: Option<TensorRef> = None;
        let _ = g
            .cond(
                p,
                |g| {
                    let y = g.neg(x)?;
                    leaked = Some(y);
                    Ok(vec![y])
                },
                |g| Ok(vec![g.identity(x)?]),
            )
            .unwrap();
        // Using the true branch's internal tensor at top level must fail.
        let y = leaked.unwrap();
        assert!(g.neg(y).is_err());
    }

    #[test]
    fn exits_live_in_parent_context() {
        let mut g = GraphBuilder::new();
        let i0 = g.scalar_i64(0);
        let lim = g.scalar_i64(2);
        let outs = g
            .while_loop(
                &[i0],
                |g, vars| g.less(vars[0], lim),
                |g, vars| {
                    let one = g.scalar_i64(1);
                    Ok(vec![g.add(vars[0], one)?])
                },
                WhileOptions::default(),
            )
            .unwrap();
        // Exit output is usable at top level without capture errors.
        let doubled = g.add(outs[0], outs[0]).unwrap();
        assert_ne!(doubled.node, NodeId(0));
        g.finish().unwrap();
    }
}

impl GraphBuilder {
    /// Builds a multi-way conditional: executes `branches[i]` where `i` is
    /// the run-time value of `index` (an `i64` scalar), or `default` when
    /// `index` is out of range.
    ///
    /// Lowered onto a chain of binary `cond`s, so exactly one branch's
    /// operations execute and the rest receive dead signals — the paper's
    /// conditional-computation pattern generalized to N-way dispatch (as
    /// used for expert selection in mixture-of-experts layers).
    pub fn case(
        &mut self,
        index: TensorRef,
        branches: Vec<BranchFn<'_>>,
        default: impl FnOnce(&mut GraphBuilder) -> Result<Vec<TensorRef>>,
    ) -> Result<Vec<TensorRef>> {
        if self.graph().dtype(index) != DType::I64 {
            return Err(GraphError::dtype("case index", DType::I64, self.graph().dtype(index)));
        }
        // Build from the last branch backwards:
        // case(i, [b0, b1, b2], d) == cond(i==0, b0, cond(i==1, b1, cond(i==2, b2, d))).
        let mut rest: BranchFn<'_> = Box::new(default);
        for (i, branch) in branches.into_iter().enumerate().rev() {
            let prev = rest;
            rest = Box::new(move |g: &mut GraphBuilder| {
                let idx_const = g.scalar_i64(i as i64);
                let hit = g.equal(index, idx_const)?;
                g.cond(hit, branch, prev)
            });
        }
        rest(self)
    }
}

#[cfg(test)]
mod case_tests {
    use super::*;

    #[test]
    fn case_builds_cond_chain() {
        let mut g = GraphBuilder::new();
        let i = g.constant(Tensor::scalar_i64(1));
        let x = g.scalar_f32(10.0);
        let outs = g
            .case(
                i,
                vec![
                    Box::new(|g: &mut GraphBuilder| Ok(vec![g.neg(x)?])),
                    Box::new(|g: &mut GraphBuilder| Ok(vec![g.square(x)?])),
                    Box::new(|g: &mut GraphBuilder| Ok(vec![g.identity(x)?])),
                ],
                |g| Ok(vec![g.scalar_f32(-1.0)]),
            )
            .unwrap();
        assert_eq!(outs.len(), 1);
        // Three binary conds: three predicate Equal nodes.
        let eqs = g.graph().nodes().iter().filter(|n| n.op.name() == "Equal").count();
        assert_eq!(eqs, 3);
        g.finish().unwrap().validate().unwrap();
    }

    #[test]
    fn case_rejects_non_integer_index() {
        let mut g = GraphBuilder::new();
        let i = g.scalar_f32(0.0);
        let r = g.case(i, vec![], |g| Ok(vec![g.scalar_f32(0.0)]));
        assert!(r.is_err());
    }
}
