//! Higher-order functions defined in terms of `while_loop` and TensorArrays.
//!
//! Per §2.1 of the paper, the set of control-flow *primitives* stays small:
//! `scan`, `map_fn`, `foldl`, and `foldr` are library functions lowered onto
//! `while_loop` and `TensorArray` operations, exactly as in Figure 2.

use crate::control_flow::WhileOptions;
use crate::graph::TensorRef;
use crate::{GraphBuilder, Result};
use dcf_tensor::{DType, Tensor};

impl GraphBuilder {
    /// Generalized prefix sum (Figure 2): returns a tensor whose leading
    /// index `i` holds `fn(...fn(fn(init, elems[0]), elems[1])..., elems[i])`.
    ///
    /// `elems` is unstacked along its leading axis; `f` is applied
    /// repeatedly inside an in-graph while-loop; results are packed back
    /// into a single tensor.
    pub fn scan(
        &mut self,
        f: impl Fn(&mut GraphBuilder, TensorRef, TensorRef) -> Result<TensorRef>,
        elems: TensorRef,
        init: TensorRef,
        options: WhileOptions,
    ) -> Result<TensorRef> {
        let elem_dtype = self.graph().dtype(elems);
        let acc_dtype = self.graph().dtype(init);
        let zero_size = self.scalar_i64(0);
        let elem_ta = self.tensor_array(elem_dtype, zero_size)?;
        let elem_ta = elem_ta.unstack(self, elems)?;
        let result_ta = self.tensor_array(acc_dtype, zero_size)?;
        let n = elem_ta.size(self)?;

        let i0 = self.scalar_i64(0);
        let outs = self.while_loop(
            &[i0, init, result_ta.flow],
            |g, vars| g.less(vars[0], n),
            |g, vars| {
                let (i, a, flow) = (vars[0], vars[1], vars[2]);
                let e = elem_ta.with_flow(elem_ta.flow).read(g, i)?;
                let a_out = f(g, a, e)?;
                let out_flow = result_ta.with_flow(flow).write(g, i, a_out)?.flow;
                let one = g.scalar_i64(1);
                let i1 = g.add(i, one)?;
                Ok(vec![i1, a_out, out_flow])
            },
            options,
        )?;
        result_ta.with_flow(outs[2]).pack(self)
    }

    /// Applies `f` to each leading-axis element of `elems` and packs the
    /// results.
    pub fn map_fn(
        &mut self,
        f: impl Fn(&mut GraphBuilder, TensorRef) -> Result<TensorRef>,
        elems: TensorRef,
        out_dtype: DType,
        options: WhileOptions,
    ) -> Result<TensorRef> {
        let elem_dtype = self.graph().dtype(elems);
        let zero_size = self.scalar_i64(0);
        let elem_ta = self.tensor_array(elem_dtype, zero_size)?;
        let elem_ta = elem_ta.unstack(self, elems)?;
        let result_ta = self.tensor_array(out_dtype, zero_size)?;
        let n = elem_ta.size(self)?;

        let i0 = self.scalar_i64(0);
        let outs = self.while_loop(
            &[i0, result_ta.flow],
            |g, vars| g.less(vars[0], n),
            |g, vars| {
                let (i, flow) = (vars[0], vars[1]);
                let e = elem_ta.read(g, i)?;
                let y = f(g, e)?;
                let out_flow = result_ta.with_flow(flow).write(g, i, y)?.flow;
                let one = g.scalar_i64(1);
                let i1 = g.add(i, one)?;
                Ok(vec![i1, out_flow])
            },
            options,
        )?;
        result_ta.with_flow(outs[1]).pack(self)
    }

    /// Left fold over the leading axis of `elems`, starting from `init`.
    pub fn foldl(
        &mut self,
        f: impl Fn(&mut GraphBuilder, TensorRef, TensorRef) -> Result<TensorRef>,
        elems: TensorRef,
        init: TensorRef,
        options: WhileOptions,
    ) -> Result<TensorRef> {
        let elem_dtype = self.graph().dtype(elems);
        let zero_size = self.scalar_i64(0);
        let elem_ta = self.tensor_array(elem_dtype, zero_size)?;
        let elem_ta = elem_ta.unstack(self, elems)?;
        let n = elem_ta.size(self)?;

        let i0 = self.scalar_i64(0);
        let outs = self.while_loop(
            &[i0, init],
            |g, vars| g.less(vars[0], n),
            |g, vars| {
                let (i, a) = (vars[0], vars[1]);
                let e = elem_ta.read(g, i)?;
                let a_out = f(g, a, e)?;
                let one = g.scalar_i64(1);
                let i1 = g.add(i, one)?;
                Ok(vec![i1, a_out])
            },
            options,
        )?;
        Ok(outs[1])
    }

    /// Right fold over the leading axis of `elems`, starting from `init`.
    pub fn foldr(
        &mut self,
        f: impl Fn(&mut GraphBuilder, TensorRef, TensorRef) -> Result<TensorRef>,
        elems: TensorRef,
        init: TensorRef,
        options: WhileOptions,
    ) -> Result<TensorRef> {
        let elem_dtype = self.graph().dtype(elems);
        let zero_size = self.scalar_i64(0);
        let elem_ta = self.tensor_array(elem_dtype, zero_size)?;
        let elem_ta = elem_ta.unstack(self, elems)?;
        let n = elem_ta.size(self)?;

        // Iterate i from n-1 down to 0.
        let one_out = self.constant(Tensor::scalar_i64(1));
        let start = self.sub(n, one_out)?;
        let zero = self.scalar_i64(0);
        let outs = self.while_loop(
            &[start, init],
            |g, vars| g.greater_equal(vars[0], zero),
            |g, vars| {
                let (i, a) = (vars[0], vars[1]);
                let e = elem_ta.read(g, i)?;
                let a_out = f(g, a, e)?;
                let one = g.scalar_i64(1);
                let i1 = g.sub(i, one)?;
                Ok(vec![i1, a_out])
            },
            options,
        )?;
        Ok(outs[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_builds_loop_and_arrays() {
        let mut g = GraphBuilder::new();
        let elems = g.constant(Tensor::from_vec_f32(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let init = g.scalar_f32(0.0);
        let r = g.scan(|g, a, e| g.add(a, e), elems, init, WhileOptions::default()).unwrap();
        assert_eq!(g.graph().dtype(r), DType::F32);
        let graph = g.finish().unwrap();
        graph.validate().unwrap();
        // Uses two TensorArrays and one loop.
        let ta_count = graph.nodes().iter().filter(|n| n.op.name() == "TensorArrayNew").count();
        assert_eq!(ta_count, 2);
    }

    #[test]
    fn fold_and_map_build() {
        let mut g = GraphBuilder::new();
        let elems = g.constant(Tensor::from_vec_f32(vec![1.0, 2.0], &[2]).unwrap());
        let init = g.scalar_f32(0.0);
        let l = g.foldl(|g, a, e| g.add(a, e), elems, init, WhileOptions::default()).unwrap();
        let r = g.foldr(|g, a, e| g.sub(a, e), elems, init, WhileOptions::default()).unwrap();
        let m = g.map_fn(|g, e| g.square(e), elems, DType::F32, WhileOptions::default()).unwrap();
        assert_eq!(g.graph().dtype(l), DType::F32);
        assert_eq!(g.graph().dtype(r), DType::F32);
        assert_eq!(g.graph().dtype(m), DType::F32);
        g.finish().unwrap().validate().unwrap();
    }
}
