//! The dataflow graph container.

use crate::context::{Context, ContextId, ContextKind};
use crate::error::GraphError;
use crate::node::Node;
use crate::op::OpKind;
use crate::Result;
use dcf_tensor::{DType, Shape, Tensor};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node: its index in the graph's node table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A symbolic tensor: one data output of one node.
///
/// This is the value handle users manipulate while constructing graphs
/// (analogous to a `tf.Tensor`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TensorRef {
    /// Producing node.
    pub node: NodeId,
    /// Output port of the producing node.
    pub port: usize,
}

/// A named in-graph function: a body subgraph with typed parameters and
/// results, invoked via [`crate::OpKind::Call`].
///
/// The body lives in its own [`ContextKind::Function`] context inside the
/// same graph; the executor lowers each call site onto the frame machinery
/// (a fresh dynamic frame per call, arguments delivered Enter-like to the
/// parameter nodes, results routed Exit-like back to the `Call`'s
/// consumers). Because the body appears once regardless of how many call
/// sites exist, N calls of one function compile N times fewer body nodes
/// than N inlined copies — and a recursive `Call` inside the body simply
/// pushes another dynamically tagged frame at run time.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name, unique within the graph.
    pub name: String,
    /// `FunctionParam` nodes in parameter order: the explicitly declared
    /// parameters first, then one implicit parameter per captured external.
    pub params: Vec<NodeId>,
    /// `FunctionRet` nodes in result order (empty until the body is
    /// defined; a declared-but-undefined function cannot be called).
    pub rets: Vec<NodeId>,
    /// Parameter dtypes, parallel to `params`.
    pub param_dtypes: Vec<DType>,
    /// Result dtypes.
    pub result_dtypes: Vec<DType>,
    /// The body context.
    pub ctx: ContextId,
    /// External tensors captured into the body, parallel to the implicit
    /// trailing parameters. Call sites append these as extra arguments.
    pub captured_exts: Vec<TensorRef>,
    /// Number of explicitly declared parameters (callers pass exactly
    /// these; the builder appends `captured_exts` automatically).
    pub explicit_params: usize,
}

impl Function {
    /// `true` once the body has been defined (results recorded).
    pub fn is_defined(&self) -> bool {
        !self.rets.is_empty()
    }
}

/// A complete dataflow graph: nodes, edges (stored as per-node input lists),
/// the control-flow context tree, and the in-graph function registry.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) contexts: Vec<Context>,
    pub(crate) functions: Vec<Function>,
}

impl Graph {
    /// Creates an empty graph with only the root context.
    pub fn new() -> Graph {
        Graph {
            nodes: Vec::new(),
            contexts: vec![Context { id: ContextId::ROOT, parent: None, kind: ContextKind::Root }],
            functions: Vec::new(),
        }
    }

    /// Returns all in-graph functions, in declaration order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Looks up an in-graph function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Returns all nodes in creation order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Returns the number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns the dtype of a symbolic tensor.
    pub fn dtype(&self, t: TensorRef) -> DType {
        self.nodes[t.node.0].out_dtypes[t.port]
    }

    /// Returns the control-flow context with the given id.
    pub fn context(&self, id: ContextId) -> &Context {
        &self.contexts[id.0]
    }

    /// Returns all control-flow contexts.
    pub fn contexts(&self) -> &[Context] {
        &self.contexts
    }

    /// Returns `true` if `anc` is `ctx` or one of its ancestors.
    pub fn context_is_ancestor_or_self(&self, anc: ContextId, ctx: ContextId) -> bool {
        crate::context::is_ancestor_or_self(&self.contexts, anc, ctx)
    }

    /// Returns the chain of contexts from the root to `ctx`, inclusive.
    pub fn context_chain(&self, ctx: ContextId) -> Vec<ContextId> {
        crate::context::chain_to(&self.contexts, ctx)
    }

    /// Validates structural invariants: all input references resolve, no
    /// dangling Merge placeholders remain, arity matches the op where it is
    /// statically known.
    pub fn validate(&self) -> Result<()> {
        for n in &self.nodes {
            for (i, inp) in n.inputs.iter().enumerate() {
                if inp.node.0 >= self.nodes.len() {
                    return Err(GraphError::DanglingRef(format!(
                        "{}: input {i} references missing node {:?}",
                        n.name, inp.node
                    )));
                }
                let producer = &self.nodes[inp.node.0];
                if inp.port >= producer.out_dtypes.len() {
                    return Err(GraphError::DanglingRef(format!(
                        "{}: input {i} references port {} of {} which has {} outputs",
                        n.name,
                        inp.port,
                        producer.name,
                        producer.out_dtypes.len()
                    )));
                }
            }
            for c in &n.control_inputs {
                if c.0 >= self.nodes.len() {
                    return Err(GraphError::DanglingRef(format!(
                        "{}: control input references missing node {:?}",
                        n.name, c
                    )));
                }
            }
            if matches!(n.op, OpKind::Merge) && n.inputs.len() < 2 {
                return Err(GraphError::ControlFlow(format!(
                    "{}: Merge with {} inputs (dangling back edge not patched?)",
                    n.name,
                    n.inputs.len()
                )));
            }
            if let OpKind::Call { function, results } = &n.op {
                let Some(f) = self.function(function) else {
                    return Err(GraphError::ControlFlow(format!(
                        "{}: Call of unknown function '{function}'",
                        n.name
                    )));
                };
                if !f.is_defined() {
                    return Err(GraphError::ControlFlow(format!(
                        "{}: Call of declared but undefined function '{function}'",
                        n.name
                    )));
                }
                if n.inputs.len() != f.param_dtypes.len() {
                    return Err(GraphError::Arity {
                        op: format!("Call('{function}')"),
                        expected: f.param_dtypes.len(),
                        found: n.inputs.len(),
                    });
                }
                for (inp, &want) in n.inputs.iter().zip(&f.param_dtypes) {
                    let got = self.dtype(*inp);
                    if got != want {
                        return Err(GraphError::dtype(n.name.as_str(), want, got));
                    }
                }
                if results != &f.result_dtypes {
                    return Err(GraphError::ControlFlow(format!(
                        "{}: Call result dtypes {results:?} disagree with function \
                         '{function}' ({:?})",
                        n.name, f.result_dtypes
                    )));
                }
            }
        }
        for f in &self.functions {
            if f.params.is_empty() || f.result_dtypes.is_empty() {
                return Err(GraphError::ControlFlow(format!(
                    "function '{}' needs at least one parameter and one result",
                    f.name
                )));
            }
            for (i, (&p, &want)) in f.params.iter().zip(&f.param_dtypes).enumerate() {
                let pn = &self.nodes[p.0];
                match &pn.op {
                    OpKind::FunctionParam { function, index, dtype }
                        if *function == f.name
                            && *index == i
                            && *dtype == want
                            && pn.ctx == f.ctx => {}
                    _ => {
                        return Err(GraphError::ControlFlow(format!(
                            "function '{}': node {:?} is not parameter {i}",
                            f.name, p
                        )));
                    }
                }
            }
            for (i, &r) in f.rets.iter().enumerate() {
                let rn = &self.nodes[r.0];
                match &rn.op {
                    OpKind::FunctionRet { function, index }
                        if *function == f.name && *index == i && rn.ctx == f.ctx => {}
                    _ => {
                        return Err(GraphError::ControlFlow(format!(
                            "function '{}': node {:?} is not result {i}",
                            f.name, r
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Returns node ids in a topological order that ignores loop back edges
    /// (`NextIteration -> Merge`), which are the only cycles in a valid
    /// graph.
    ///
    /// Useful for autodiff (reverse traversal) and for deterministic
    /// scheduling decisions. Returns an error if a non-back-edge cycle is
    /// found.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for node in &self.nodes {
            for inp in &node.inputs {
                let from = &self.nodes[inp.node.0];
                // Back edges are NextIteration feeding a Merge.
                let back_edge =
                    matches!(from.op, OpKind::NextIteration) && matches!(node.op, OpKind::Merge);
                if !back_edge {
                    indegree[node.id.0] += 1;
                    successors[inp.node.0].push(node.id.0);
                }
            }
            for c in &node.control_inputs {
                let from = &self.nodes[c.0];
                let back_edge =
                    matches!(from.op, OpKind::NextIteration) && matches!(node.op, OpKind::Merge);
                if !back_edge {
                    indegree[node.id.0] += 1;
                    successors[c.0].push(node.id.0);
                }
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        // Reverse so that pop() yields the smallest id first, keeping the
        // order deterministic and close to creation order.
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(NodeId(i));
            for &s in &successors[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    // Insert preserving descending sort for determinism.
                    let pos = ready.partition_point(|&x| x > s);
                    ready.insert(pos, s);
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Invalid(
                "graph contains a cycle not formed by NextIteration back edges".into(),
            ));
        }
        Ok(order)
    }

    /// Returns, for every node, the list of (consumer node, input slot)
    /// pairs per output port.
    pub fn consumers(&self) -> HashMap<TensorRef, Vec<(NodeId, usize)>> {
        let mut map: HashMap<TensorRef, Vec<(NodeId, usize)>> = HashMap::new();
        for node in &self.nodes {
            for (slot, inp) in node.inputs.iter().enumerate() {
                map.entry(*inp).or_default().push((node.id, slot));
            }
        }
        map
    }

    /// Returns the statically inferred shape of a tensor, if known.
    pub fn shape(&self, t: TensorRef) -> Option<&Shape> {
        self.nodes[t.node.0].out_shapes[t.port].as_ref()
    }

    /// Best-effort static shape inference.
    ///
    /// Returns one `Option<Shape>` per output; `None` where the shape
    /// depends on run-time values (fed placeholders, TensorArray contents,
    /// dynamic gathers). Static shapes let automatic differentiation emit
    /// static reductions for broadcast gradients instead of saving forward
    /// tensors merely to learn their shapes.
    pub fn infer_shapes(
        op: &OpKind,
        inputs: &[Option<Shape>],
        n_outputs: usize,
    ) -> Vec<Option<Shape>> {
        use OpKind::*;
        let get = |i: usize| -> Option<Shape> { inputs.get(i).cloned().flatten() };
        let bcast = || -> Option<Shape> {
            let mut acc = get(0)?;
            for i in 1..inputs.len() {
                acc = dcf_tensor::broadcast_shapes(&acc, &get(i)?).ok()?;
            }
            Some(acc)
        };
        let scalar = || Some(Shape::scalar());
        let one = |s: Option<Shape>| vec![s];
        match op {
            Const(t) => one(Some(t.shape().clone())),
            Placeholder { shape, .. } => one(shape.clone().map(Shape::new)),
            Variable { init, .. } => one(Some(init.shape().clone())),
            RandomUniform { dims, .. } => one(Some(Shape::from(dims.clone()))),
            Add | Sub | Mul | Div | Maximum | Minimum => one(bcast()),
            AddN => one(get(0)),
            Neg
            | Exp
            | Log
            | Sqrt
            | Square
            | Abs
            | Sigmoid
            | Tanh
            | Relu
            | Softmax
            | Identity
            | StopGradient
            | ZerosLike
            | OnesLike
            | LoopCond
            | Cast { .. } => one(get(0)),
            ArgMax => one(get(0).and_then(|s| {
                if s.rank() == 0 {
                    None
                } else {
                    Some(Shape::new(s.dims()[..s.rank() - 1].to_vec()))
                }
            })),
            MatMul { transpose_a, transpose_b } => {
                let r = (|| {
                    let a = get(0)?;
                    let b = get(1)?;
                    if a.rank() != 2 || b.rank() != 2 {
                        return None;
                    }
                    let m = if *transpose_a { a.dim(1) } else { a.dim(0) };
                    let n = if *transpose_b { b.dim(0) } else { b.dim(1) };
                    Some(Shape::from([m, n]))
                })();
                one(r)
            }
            Transpose => one(get(0).and_then(|s| {
                if s.rank() == 2 {
                    Some(Shape::from([s.dim(1), s.dim(0)]))
                } else {
                    None
                }
            })),
            ReduceSumAll | ReduceMeanAll | ReduceMaxAll | SizeF32 | DimSizeF32 { .. } => {
                one(scalar())
            }
            ReduceSumAxis { axis, keep_dims }
            | ReduceMeanAxis { axis, keep_dims }
            | ReduceMaxAxis { axis, keep_dims } => {
                let r = get(0).and_then(|s| {
                    let rank = s.rank() as i64;
                    let ax = if *axis < 0 { *axis + rank } else { *axis };
                    if ax < 0 || ax >= rank {
                        return None;
                    }
                    let mut dims = Vec::new();
                    for (d, &e) in s.dims().iter().enumerate() {
                        if d as i64 == ax {
                            if *keep_dims {
                                dims.push(1);
                            }
                        } else {
                            dims.push(e);
                        }
                    }
                    Some(Shape::new(dims))
                });
                one(r)
            }
            Reshape { dims } | BroadcastTo { dims } => one(Some(Shape::from(dims.clone()))),
            OneHot { depth } => one(get(0).map(|s| {
                let mut dims = s.dims().to_vec();
                dims.push(*depth);
                Shape::new(dims)
            })),
            ReduceToLike | BroadcastLike | ReshapeLike => one(get(1)),
            ExpandDims { axis } => one(get(0).and_then(|s| {
                if *axis > s.rank() {
                    return None;
                }
                let mut dims = s.dims().to_vec();
                dims.insert(*axis, 1);
                Some(Shape::new(dims))
            })),
            Concat0Grad { index } | Concat1Grad { index } => one(get(1 + index)),
            Index0Grad => one(get(1)),
            Less | LessEqual | Greater | GreaterEqual | Equal => one(bcast()),
            LogicalAnd | LogicalOr => one(bcast()),
            LogicalNot => one(get(0)),
            Select => one(get(1)),
            Concat0 => {
                let r = (|| {
                    let mut lead = 0usize;
                    let first = get(0)?;
                    if first.rank() == 0 {
                        return None;
                    }
                    for i in 0..inputs.len() {
                        lead += get(i)?.dims().first().copied()?;
                    }
                    let mut dims = first.dims().to_vec();
                    dims[0] = lead;
                    Some(Shape::new(dims))
                })();
                one(r)
            }
            Concat1 => {
                let r = (|| {
                    let first = get(0)?;
                    if first.rank() != 2 {
                        return None;
                    }
                    let mut cols = 0usize;
                    for i in 0..inputs.len() {
                        cols += get(i)?.dims().get(1).copied()?;
                    }
                    Some(Shape::from([first.dim(0), cols]))
                })();
                one(r)
            }
            Split1 { n } => {
                let r = get(0).and_then(|s| {
                    if s.rank() == 2 && s.dim(1) % n == 0 {
                        Some(Shape::from([s.dim(0), s.dim(1) / n]))
                    } else {
                        None
                    }
                });
                vec![r; *n]
            }
            Pack => one(get(0).map(|s| s.prepend(inputs.len()))),
            Index0 => one(get(0).and_then(|s| s.drop_leading().ok())),
            Gather0 => {
                let r = (|| {
                    let data = get(0)?;
                    let idx = get(1)?;
                    let mut dims = idx.dims().to_vec();
                    dims.extend_from_slice(data.drop_leading().ok()?.dims());
                    Some(Shape::new(dims))
                })();
                one(r)
            }
            ScatterAdd0 { rows } => {
                one(get(1).and_then(|s| s.drop_leading().ok()).map(|t| t.prepend(*rows)))
            }
            Fused(_) => one(bcast()),
            Switch => vec![get(0), get(0)],
            Merge => {
                let a = get(0);
                let b = get(1);
                one(if a == b { a } else { None })
            }
            Enter { .. }
            | Exit
            | NextIteration
            | FunctionRet { .. }
            | Assign { .. }
            | AssignAdd { .. }
            | AssignSub { .. } => one(get(0)),
            StackPush => one(get(2)),
            _ => vec![None; n_outputs],
        }
    }

    /// Adds a node directly to the graph (runtime/partitioner use).
    ///
    /// Unlike the builder path, no context capture is performed: the caller
    /// is responsible for the cross-context correctness of the edges (the
    /// partitioner wires Send/Recv and control-loop machinery, which are
    /// boundary operations by design). Output dtypes are inferred.
    pub fn add_node_for_runtime(
        &mut self,
        op: OpKind,
        inputs: Vec<TensorRef>,
        ctx: ContextId,
        device: Option<String>,
        name_hint: &str,
    ) -> Result<NodeId> {
        let in_dtypes: Vec<DType> = inputs.iter().map(|t| self.dtype(*t)).collect();
        let out_dtypes = Graph::infer_dtypes(&op, &in_dtypes)?;
        let in_shapes: Vec<Option<Shape>> =
            inputs.iter().map(|t| self.shape(*t).cloned()).collect();
        let out_shapes = Graph::infer_shapes(&op, &in_shapes, out_dtypes.len());
        let id = NodeId(self.nodes.len());
        let name = format!("{}_{}", name_hint, id.0);
        self.nodes.push(Node {
            id,
            name,
            op,
            inputs,
            control_inputs: Vec::new(),
            device,
            ctx,
            out_dtypes,
            out_shapes,
        });
        Ok(id)
    }

    /// Replaces a node, in place, with a constant (constant-propagation
    /// use). The node id and output port stay valid; inputs and control
    /// edges are cleared.
    pub fn replace_with_const(&mut self, node: NodeId, value: Tensor) {
        let n = &mut self.nodes[node.0];
        n.out_dtypes = vec![value.dtype()];
        n.out_shapes = vec![Some(value.shape().clone())];
        n.op = OpKind::Const(value);
        n.inputs.clear();
        n.control_inputs.clear();
        n.ctx = ContextId::ROOT;
    }

    /// Rewrites input `slot` of `node` to `t` (partitioner use: replacing a
    /// cross-device edge with a Recv output).
    pub fn set_input(&mut self, node: NodeId, slot: usize, t: TensorRef) {
        self.nodes[node.0].inputs[slot] = t;
    }

    /// Adds a control edge `dep -> node` (partitioner use: gating loop
    /// Recvs on the control-loop state machine).
    pub fn add_control_edge(&mut self, node: NodeId, dep: NodeId) {
        let n = &mut self.nodes[node.0];
        if !n.control_inputs.contains(&dep) {
            n.control_inputs.push(dep);
        }
    }

    /// Returns the chain of enclosing while-contexts of `ctx`, outermost
    /// first (conditional branch contexts are skipped: they do not create
    /// frames at run time).
    pub fn while_chain(&self, ctx: ContextId) -> Vec<ContextId> {
        self.context_chain(ctx)
            .into_iter()
            .filter(|c| matches!(self.contexts[c.0].kind, crate::context::ContextKind::While(_)))
            .collect()
    }

    /// Infers the output dtypes of `op` applied to inputs of the given
    /// dtypes. Returns an error for statically detectable type errors.
    pub fn infer_dtypes(op: &OpKind, inputs: &[DType]) -> Result<Vec<DType>> {
        use OpKind::*;
        let first = inputs.first().copied();
        let req = |idx: usize, want: DType| -> Result<()> {
            match inputs.get(idx) {
                Some(&d) if d == want => Ok(()),
                Some(&d) => Err(GraphError::dtype(op.name(), want, d)),
                None => Err(GraphError::Arity {
                    op: op.name().into(),
                    expected: idx + 1,
                    found: inputs.len(),
                }),
            }
        };
        let same_as_first = |n: usize| -> Result<Vec<DType>> {
            let f = first.ok_or_else(|| GraphError::Arity {
                op: op.name().into(),
                expected: n,
                found: 0,
            })?;
            for &d in inputs {
                if d != f {
                    return Err(GraphError::dtype(op.name(), f, d));
                }
            }
            Ok(vec![f])
        };
        Ok(match op {
            Const(t) => vec![t.dtype()],
            Placeholder { dtype, .. } => vec![*dtype],
            Variable { init, .. } => vec![init.dtype()],
            RandomUniform { .. } => vec![DType::F32],
            Add | Sub | Mul | Maximum | Minimum => same_as_first(2)?,
            AddN => same_as_first(1)?,
            Div => {
                req(0, DType::F32)?;
                req(1, DType::F32)?;
                vec![DType::F32]
            }
            Neg => same_as_first(1)?,
            Exp | Log | Sqrt | Square | Abs | Sigmoid | Tanh | Relu | Softmax => {
                req(0, DType::F32)?;
                vec![DType::F32]
            }
            ArgMax => {
                req(0, DType::F32)?;
                vec![DType::I64]
            }
            MatMul { .. } => {
                req(0, DType::F32)?;
                req(1, DType::F32)?;
                vec![DType::F32]
            }
            Transpose | Identity | StopGradient | ZerosLike | Reshape { .. } => same_as_first(1)?,
            OnesLike => {
                req(0, DType::F32)?;
                vec![DType::F32]
            }
            BroadcastTo { .. } => {
                req(0, DType::F32)?;
                vec![DType::F32]
            }
            ReduceSumAll | ReduceMaxAll => same_as_first(1)?,
            ReduceMeanAll | ReduceSumAxis { .. } | ReduceMeanAxis { .. } | ReduceMaxAxis { .. } => {
                req(0, DType::F32)?;
                vec![DType::F32]
            }
            Cast { dtype } => {
                if inputs.is_empty() {
                    return Err(GraphError::Arity { op: "Cast".into(), expected: 1, found: 0 });
                }
                vec![*dtype]
            }
            OneHot { .. } => {
                req(0, DType::I64)?;
                vec![DType::F32]
            }
            ReduceToLike | BroadcastLike | ReshapeLike => {
                req(0, DType::F32)?;
                req(1, DType::F32)?;
                vec![DType::F32]
            }
            ExpandDims { .. } => {
                req(0, DType::F32)?;
                vec![DType::F32]
            }
            SizeF32 | DimSizeF32 { .. } => {
                if inputs.is_empty() {
                    return Err(GraphError::Arity { op: op.name().into(), expected: 1, found: 0 });
                }
                vec![DType::F32]
            }
            Concat0Grad { .. } | Concat1Grad { .. } => {
                req(0, DType::F32)?;
                vec![DType::F32]
            }
            Index0Grad => {
                req(0, DType::F32)?;
                req(1, DType::F32)?;
                req(2, DType::I64)?;
                vec![DType::F32]
            }
            Less | LessEqual | Greater | GreaterEqual | Equal => {
                same_as_first(2)?;
                vec![DType::Bool]
            }
            LogicalAnd | LogicalOr => {
                req(0, DType::Bool)?;
                req(1, DType::Bool)?;
                vec![DType::Bool]
            }
            LogicalNot => {
                req(0, DType::Bool)?;
                vec![DType::Bool]
            }
            Select => {
                req(0, DType::Bool)?;
                let a = inputs.get(1).copied().ok_or_else(|| GraphError::Arity {
                    op: "Select".into(),
                    expected: 3,
                    found: inputs.len(),
                })?;
                vec![a]
            }
            Concat0 | Concat1 | Pack => same_as_first(1)?,
            Split1 { n } => {
                req(0, DType::F32)?;
                vec![DType::F32; *n]
            }
            Index0 => {
                let d = first.ok_or_else(|| GraphError::Arity {
                    op: "Index0".into(),
                    expected: 2,
                    found: 0,
                })?;
                req(1, DType::I64)?;
                vec![d]
            }
            Gather0 => {
                let d = first.ok_or_else(|| GraphError::Arity {
                    op: "Gather0".into(),
                    expected: 2,
                    found: 0,
                })?;
                req(1, DType::I64)?;
                vec![d]
            }
            ScatterAdd0 { .. } => {
                req(0, DType::I64)?;
                req(1, DType::F32)?;
                vec![DType::F32]
            }
            Switch => {
                let d = first.ok_or_else(|| GraphError::Arity {
                    op: "Switch".into(),
                    expected: 2,
                    found: 0,
                })?;
                req(1, DType::Bool)?;
                vec![d, d]
            }
            Merge => same_as_first(1)?,
            Enter { .. } | Exit | NextIteration => same_as_first(1)?,
            // Call's per-argument dtypes are checked against the function's
            // declared parameters in `validate` (the op alone does not know
            // its callee); the embedded result dtypes are authoritative.
            Call { results, .. } => results.clone(),
            FunctionParam { dtype, .. } => vec![*dtype],
            FunctionRet { .. } => same_as_first(1)?,
            LoopCond => {
                req(0, DType::Bool)?;
                vec![DType::Bool]
            }
            Assign { .. } | AssignAdd { .. } | AssignSub { .. } => same_as_first(1)?,
            StackCreate { .. } => vec![DType::I64],
            StackPush => {
                req(0, DType::I64)?;
                req(1, DType::I64)?;
                let d = inputs.get(2).copied().ok_or_else(|| GraphError::Arity {
                    op: "StackPush".into(),
                    expected: 3,
                    found: inputs.len(),
                })?;
                vec![d]
            }
            // StackPop's value dtype is not statically known from inputs
            // alone; the builder supplies it via the dedicated helper, so
            // here we default to F32 (stacks store differentiable values).
            StackPop => {
                req(0, DType::I64)?;
                req(1, DType::I64)?;
                vec![DType::F32]
            }
            TensorArrayNew { .. } => vec![DType::I64, DType::F32],
            TensorArrayWrite => {
                req(0, DType::I64)?;
                req(1, DType::I64)?;
                vec![DType::F32]
            }
            TensorArrayRead => {
                req(0, DType::I64)?;
                req(1, DType::I64)?;
                vec![DType::F32]
            }
            TensorArrayPack => {
                req(0, DType::I64)?;
                vec![DType::F32]
            }
            TensorArrayUnpack => {
                req(0, DType::I64)?;
                vec![DType::F32]
            }
            TensorArraySize => {
                req(0, DType::I64)?;
                vec![DType::I64]
            }
            TensorArrayGrad { .. } => {
                req(0, DType::I64)?;
                vec![DType::I64, DType::F32]
            }
            StreamStateRead { .. } => {
                req(0, DType::I64)?;
                vec![DType::F32]
            }
            StreamStateWrite { .. } => {
                req(0, DType::I64)?;
                let d = inputs.get(1).copied().ok_or_else(|| GraphError::Arity {
                    op: "StreamStateWrite".into(),
                    expected: 2,
                    found: inputs.len(),
                })?;
                vec![d]
            }
            Send { .. } => vec![],
            Recv { dtype, .. } => vec![*dtype],
            NoOp | ControlTrigger => vec![],
            Fused(spec) => {
                for i in 0..spec.n_inputs {
                    req(i, DType::F32)?;
                }
                vec![DType::F32]
            }
        })
    }

    /// A 64-bit structural fingerprint of the graph.
    ///
    /// Two graphs built by the same construction code hash identically:
    /// the hash covers ops (including constant values and attributes),
    /// data and control edges, contexts, device specs, and output dtypes —
    /// but **not** node names, so the builder's name counters do not
    /// perturb it. Used to key the process-wide compiled-graph cache;
    /// collisions only cost a duplicate compile if the keyed map also
    /// compares the fingerprint's companion fields, so callers should pair
    /// the hash with cheap discriminants (node count, cluster spec).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        fnv(&mut h, &self.nodes.len().to_le_bytes());
        for n in &self.nodes {
            // Debug renderings are faithful (derived, f32 round-trips) and
            // deterministic; 0xff separators cannot occur in UTF-8.
            fnv(&mut h, format!("{:?}", n.op).as_bytes());
            fnv(&mut h, &[0xff]);
            for i in &n.inputs {
                fnv(&mut h, &i.node.0.to_le_bytes());
                fnv(&mut h, &i.port.to_le_bytes());
            }
            fnv(&mut h, &[0xff]);
            for c in &n.control_inputs {
                fnv(&mut h, &c.0.to_le_bytes());
            }
            fnv(&mut h, &[0xff]);
            fnv(&mut h, &n.ctx.0.to_le_bytes());
            fnv(&mut h, n.device.as_deref().unwrap_or("").as_bytes());
            fnv(&mut h, &[0xff]);
            for d in &n.out_dtypes {
                fnv(&mut h, format!("{d:?}").as_bytes());
            }
            fnv(&mut h, &[0xff]);
        }
        for c in &self.contexts {
            fnv(&mut h, &c.id.0.to_le_bytes());
            fnv(&mut h, &c.parent.map(|p| p.0 + 1).unwrap_or(0).to_le_bytes());
            fnv(&mut h, format!("{:?}", c.kind).as_bytes());
            fnv(&mut h, &[0xff]);
        }
        for f in &self.functions {
            fnv(&mut h, format!("{f:?}").as_bytes());
            fnv(&mut h, &[0xff]);
        }
        h
    }

    /// Redirects every use of `from` (data inputs on any port, control
    /// edges, and control-flow context metadata) to `to`, deduplicating
    /// control edges that collapse together. The `from` node itself is
    /// left in place (typically for a later [`Graph::prune_nodes`]).
    ///
    /// Common-subexpression elimination uses this to merge structurally
    /// identical nodes; it is only meaningful when `from` and `to` have
    /// the same output signature.
    pub fn replace_uses(&mut self, from: NodeId, to: NodeId) {
        if from == to {
            return;
        }
        for n in &mut self.nodes {
            for inp in &mut n.inputs {
                if inp.node == from {
                    inp.node = to;
                }
            }
            let mut changed = false;
            for c in &mut n.control_inputs {
                if *c == from {
                    *c = to;
                    changed = true;
                }
            }
            if changed {
                let mut seen: Vec<NodeId> = Vec::with_capacity(n.control_inputs.len());
                n.control_inputs.retain(|c| {
                    if seen.contains(c) {
                        false
                    } else {
                        seen.push(*c);
                        true
                    }
                });
            }
        }
        for_each_context_ref(&mut self.contexts, |t| {
            if t.node == from {
                t.node = to;
            }
        });
        for_each_function_ref(&mut self.functions, |n| {
            if *n == from {
                *n = to;
            }
        });
    }

    /// Rewrites a node's operation and data inputs in place, keeping its
    /// id, name, context, device, control inputs, and output signature
    /// (dtypes/shapes). Fusion uses this to turn the last node of an
    /// elementwise chain into the [`OpKind::Fused`] node; the caller must
    /// ensure the new op produces the same outputs.
    pub fn rewrite_node(&mut self, id: NodeId, op: OpKind, inputs: Vec<TensorRef>) {
        let n = &mut self.nodes[id.0];
        n.op = op;
        n.inputs = inputs;
    }

    /// Removes every node whose `keep` entry is `false`, compacting the
    /// node table and remapping all ids (edges and context metadata).
    ///
    /// Returns the old-id → new-id map so callers can translate
    /// outstanding `TensorRef`s (`None` for dropped nodes). Fails without
    /// modifying the graph if a kept node or a context still references a
    /// dropped node.
    pub fn prune_nodes(&mut self, keep: &[bool]) -> Result<Vec<Option<NodeId>>> {
        if keep.len() != self.nodes.len() {
            return Err(GraphError::Invalid(format!(
                "prune_nodes: keep mask has {} entries for {} nodes",
                keep.len(),
                self.nodes.len()
            )));
        }
        let mut remap: Vec<Option<NodeId>> = Vec::with_capacity(self.nodes.len());
        let mut next = 0usize;
        for &k in keep {
            if k {
                remap.push(Some(NodeId(next)));
                next += 1;
            } else {
                remap.push(None);
            }
        }
        for n in &self.nodes {
            if remap[n.id.0].is_none() {
                continue;
            }
            for inp in &n.inputs {
                if remap[inp.node.0].is_none() {
                    return Err(GraphError::DanglingRef(format!(
                        "prune_nodes would orphan {}: data input from dropped node {:?}",
                        n.name, inp.node
                    )));
                }
            }
            for c in &n.control_inputs {
                if remap[c.0].is_none() {
                    return Err(GraphError::DanglingRef(format!(
                        "prune_nodes would orphan {}: control input from dropped node {:?}",
                        n.name, c
                    )));
                }
            }
        }
        let mut dangling_ctx: Option<NodeId> = None;
        for_each_context_ref(&mut self.contexts, |t| {
            if remap[t.node.0].is_none() && dangling_ctx.is_none() {
                dangling_ctx = Some(t.node);
            }
        });
        if let Some(id) = dangling_ctx {
            return Err(GraphError::DanglingRef(format!(
                "prune_nodes: a control-flow context references dropped node {id:?}"
            )));
        }
        let mut dangling_fn: Option<NodeId> = None;
        for_each_function_ref(&mut self.functions, |n| {
            if remap[n.0].is_none() && dangling_fn.is_none() {
                dangling_fn = Some(*n);
            }
        });
        if let Some(id) = dangling_fn {
            return Err(GraphError::DanglingRef(format!(
                "prune_nodes: a function references dropped node {id:?}"
            )));
        }
        let old = std::mem::take(&mut self.nodes);
        for mut n in old {
            let Some(new_id) = remap[n.id.0] else { continue };
            n.id = new_id;
            for inp in &mut n.inputs {
                inp.node = remap[inp.node.0].expect("checked above");
            }
            for c in &mut n.control_inputs {
                *c = remap[c.0].expect("checked above");
            }
            self.nodes.push(n);
        }
        for_each_context_ref(&mut self.contexts, |t| {
            t.node = remap[t.node.0].expect("checked above");
        });
        for_each_function_ref(&mut self.functions, |n| {
            *n = remap[n.0].expect("checked above");
        });
        Ok(remap)
    }
}

/// FNV-1a accumulation step.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h = (*h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Applies `f` to every `TensorRef` stored in control-flow context
/// metadata (predicates, captures, merges, loop plumbing).
pub(crate) fn for_each_context_ref(contexts: &mut [Context], mut f: impl FnMut(&mut TensorRef)) {
    for ctx in contexts {
        match &mut ctx.kind {
            ContextKind::Root => {}
            ContextKind::Cond(c) => {
                f(&mut c.pred);
                for (a, b) in &mut c.captures {
                    f(a);
                    f(b);
                }
                for t in &mut c.results {
                    f(t);
                }
                for t in &mut c.merges {
                    f(t);
                }
            }
            ContextKind::While(w) => {
                for t in &mut w.enters {
                    f(t);
                }
                for t in &mut w.merges {
                    f(t);
                }
                for t in &mut w.body_inputs {
                    f(t);
                }
                for t in &mut w.body_results {
                    f(t);
                }
                for t in &mut w.exits {
                    f(t);
                }
                if let Some(t) = w.loop_cond.as_mut() {
                    f(t);
                }
                if let Some(t) = w.counter_merge.as_mut() {
                    f(t);
                }
                if let Some(t) = w.counter_body.as_mut() {
                    f(t);
                }
                if let Some(t) = w.counter_exit.as_mut() {
                    f(t);
                }
                for (a, b) in &mut w.captures {
                    f(a);
                    f(b);
                }
            }
            ContextKind::Function(fc) => {
                for (a, b) in &mut fc.captures {
                    f(a);
                    f(b);
                }
            }
        }
    }
}

/// Applies `f` to every `NodeId` stored in the function registry
/// (parameter/result nodes and captured externals).
fn for_each_function_ref(functions: &mut [Function], mut f: impl FnMut(&mut NodeId)) {
    for func in functions {
        for p in &mut func.params {
            f(p);
        }
        for r in &mut func.rets {
            f(r);
        }
        for t in &mut func.captured_exts {
            f(&mut t.node);
        }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph ({} nodes, {} contexts)", self.nodes.len(), self.contexts.len())?;
        for n in &self.nodes {
            let ins: Vec<String> =
                n.inputs.iter().map(|i| format!("{}:{}", i.node.0, i.port)).collect();
            writeln!(
                f,
                "  %{:<4} {:<16} {:<28} ins=[{}] ctx={} dev={}",
                n.id.0,
                n.op.name(),
                n.name,
                ins.join(", "),
                n.ctx.0,
                n.device.as_deref().unwrap_or("-")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_tensor::Tensor;

    #[test]
    fn infer_basics() {
        let d = Graph::infer_dtypes(&OpKind::Add, &[DType::F32, DType::F32]).unwrap();
        assert_eq!(d, vec![DType::F32]);
        assert!(Graph::infer_dtypes(&OpKind::Add, &[DType::F32, DType::I64]).is_err());
        let d = Graph::infer_dtypes(&OpKind::Less, &[DType::I64, DType::I64]).unwrap();
        assert_eq!(d, vec![DType::Bool]);
        let d = Graph::infer_dtypes(&OpKind::Switch, &[DType::F32, DType::Bool]).unwrap();
        assert_eq!(d, vec![DType::F32, DType::F32]);
        assert!(Graph::infer_dtypes(&OpKind::Switch, &[DType::F32, DType::F32]).is_err());
        let d = Graph::infer_dtypes(&OpKind::Const(Tensor::scalar_i64(1)), &[]).unwrap();
        assert_eq!(d, vec![DType::I64]);
    }

    #[test]
    fn infer_arity_errors() {
        assert!(Graph::infer_dtypes(&OpKind::Add, &[]).is_err());
        assert!(Graph::infer_dtypes(&OpKind::Select, &[DType::Bool]).is_err());
        assert!(Graph::infer_dtypes(&OpKind::LoopCond, &[]).is_err());
    }

    #[test]
    fn empty_graph_valid() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        g.validate().unwrap();
        assert!(g.topo_order().unwrap().is_empty());
    }
}

#[cfg(test)]
mod shape_inference_tests {
    use crate::GraphBuilder;
    use dcf_tensor::Tensor;

    #[test]
    fn shapes_propagate_through_builders() {
        let mut b = GraphBuilder::new();
        let a = b.constant(Tensor::ones(&[2, 3]));
        let w = b.constant(Tensor::ones(&[3, 4]));
        let m = b.matmul(a, w).unwrap();
        assert_eq!(b.graph().shape(m).unwrap().dims(), &[2, 4]);
        let t = b.transpose(m).unwrap();
        assert_eq!(b.graph().shape(t).unwrap().dims(), &[4, 2]);
        let s = b.reduce_sum_axis(m, 0, false).unwrap();
        assert_eq!(b.graph().shape(s).unwrap().dims(), &[4]);
        let k = b.reduce_sum_axis(m, 1, true).unwrap();
        assert_eq!(b.graph().shape(k).unwrap().dims(), &[2, 1]);
        let sm = b.reduce_sum(m).unwrap();
        assert!(b.graph().shape(sm).unwrap().is_scalar());
    }

    #[test]
    fn unknown_shapes_stay_unknown() {
        let mut b = GraphBuilder::new();
        let p = b.placeholder("p", dcf_tensor::DType::F32);
        assert!(b.graph().shape(p).is_none());
        let n = b.neg(p).unwrap();
        assert!(b.graph().shape(n).is_none());
        // But a shaped placeholder propagates.
        let q = b.placeholder_shaped("q", dcf_tensor::DType::F32, &[5, 2]);
        assert_eq!(b.graph().shape(q).unwrap().dims(), &[5, 2]);
        let nq = b.neg(q).unwrap();
        assert_eq!(b.graph().shape(nq).unwrap().dims(), &[5, 2]);
    }

    #[test]
    fn broadcast_and_concat_shapes() {
        let mut b = GraphBuilder::new();
        let col = b.constant(Tensor::ones(&[4, 1]));
        let row = b.constant(Tensor::ones(&[3]));
        let s = b.add(col, row).unwrap();
        assert_eq!(b.graph().shape(s).unwrap().dims(), &[4, 3]);
        let c = b.concat1(&[s, s]).unwrap();
        assert_eq!(b.graph().shape(c).unwrap().dims(), &[4, 6]);
        let parts = b.split1(c, 3).unwrap();
        assert_eq!(b.graph().shape(parts[2]).unwrap().dims(), &[4, 2]);
        let packed = b.pack(&[s, s]).unwrap();
        assert_eq!(b.graph().shape(packed).unwrap().dims(), &[2, 4, 3]);
    }

    #[test]
    fn loop_variable_shapes_survive_the_machinery() {
        let mut b = GraphBuilder::new();
        let i0 = b.scalar_i64(0);
        let x0 = b.constant(Tensor::ones(&[2, 2]));
        let lim = b.scalar_i64(3);
        let outs = b
            .while_loop(
                &[i0, x0],
                |g, v| g.less(v[0], lim),
                |g, v| {
                    let one = g.scalar_i64(1);
                    Ok(vec![g.add(v[0], one)?, g.matmul(v[1], v[1])?])
                },
                crate::WhileOptions::default(),
            )
            .unwrap();
        // Enter -> Merge -> Switch -> Exit all forward the [2, 2] shape.
        assert_eq!(b.graph().shape(outs[1]).unwrap().dims(), &[2, 2]);
    }
}
