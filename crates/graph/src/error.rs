//! Error type for graph construction.

use dcf_tensor::{DType, TensorError};
use std::fmt;

/// Errors produced while building or validating a dataflow graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An operand has the wrong dtype for the operation being added.
    DType {
        /// The operation being constructed.
        op: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// The operation received the wrong number of inputs.
    Arity {
        /// The operation being constructed.
        op: String,
        /// Number of inputs expected.
        expected: usize,
        /// Number of inputs found.
        found: usize,
    },
    /// A referenced node or port does not exist.
    DanglingRef(String),
    /// Control-flow construction rule violated (e.g. mismatched branch
    /// outputs, wrong number of loop variables).
    ControlFlow(String),
    /// An underlying tensor operation failed (e.g. while folding constants).
    Tensor(TensorError),
    /// Any other invalid-argument condition.
    Invalid(String),
}

impl GraphError {
    /// Creates a dtype error for op `op`.
    pub fn dtype(op: impl Into<String>, expected: DType, found: DType) -> Self {
        GraphError::DType { op: op.into(), detail: format!("expected {expected}, found {found}") }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DType { op, detail } => write!(f, "{op}: {detail}"),
            GraphError::Arity { op, expected, found } => {
                write!(f, "{op}: expected {expected} inputs, found {found}")
            }
            GraphError::DanglingRef(s) => write!(f, "dangling reference: {s}"),
            GraphError::ControlFlow(s) => write!(f, "control flow: {s}"),
            GraphError::Tensor(e) => write!(f, "tensor: {e}"),
            GraphError::Invalid(s) => write!(f, "invalid: {s}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = GraphError::dtype("add", DType::F32, DType::I64);
        assert_eq!(e.to_string(), "add: expected f32, found i64");
        let e = GraphError::Arity { op: "merge".into(), expected: 2, found: 1 };
        assert!(e.to_string().contains("merge"));
    }

    #[test]
    fn from_tensor_error() {
        let te = TensorError::InvalidArgument("x".into());
        let ge: GraphError = te.clone().into();
        assert_eq!(ge, GraphError::Tensor(te));
    }
}
