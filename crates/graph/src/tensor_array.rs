//! TensorArray: a differentiable array of tensors (§2.1, §5.2).
//!
//! TensorArrays store values consumed and produced by loops in a
//! differentiable way. Each array is a runtime resource; graph-side it is
//! represented by an opaque `handle` tensor plus a scalar `flow` value that
//! serializes operations on the array (reads/writes take the current flow
//! and writes produce a new one). The flow is what loops thread through
//! their variables, while the handle is loop-invariant.

use crate::graph::TensorRef;
use crate::op::OpKind;
use crate::{GraphBuilder, Result};
use dcf_tensor::DType;

/// Graph-side handle to a TensorArray resource.
#[derive(Clone, Copy, Debug)]
pub struct TensorArrayHandle {
    /// The opaque resource handle (`i64` scalar at run time).
    pub handle: TensorRef,
    /// The current flow value; threads ordering between array operations.
    pub flow: TensorRef,
    /// Element dtype.
    pub dtype: DType,
}

impl TensorArrayHandle {
    /// Returns this handle with a different flow value (used to thread the
    /// flow through loop variables).
    pub fn with_flow(self, flow: TensorRef) -> TensorArrayHandle {
        TensorArrayHandle { flow, ..self }
    }

    /// Writes `value` at `index`, returning the handle with updated flow.
    ///
    /// In the forward computation each location may be written only once;
    /// gradient arrays (created by [`TensorArrayHandle::grad`]) accumulate
    /// instead (§5.2).
    pub fn write(
        &self,
        g: &mut GraphBuilder,
        index: TensorRef,
        value: TensorRef,
    ) -> Result<TensorArrayHandle> {
        let flow = g.add_op1(OpKind::TensorArrayWrite, &[self.handle, index, value, self.flow])?;
        Ok(TensorArrayHandle { flow, ..*self })
    }

    /// Reads the element at `index`.
    pub fn read(&self, g: &mut GraphBuilder, index: TensorRef) -> Result<TensorRef> {
        let id = g.add_op(OpKind::TensorArrayRead, &[self.handle, index, self.flow])?;
        // The read's value dtype is the array's element dtype.
        g.set_output_dtype(id, 0, self.dtype);
        Ok(TensorRef { node: id, port: 0 })
    }

    /// Stacks all elements into one tensor along a new leading axis.
    pub fn pack(&self, g: &mut GraphBuilder) -> Result<TensorRef> {
        let id = g.add_op(OpKind::TensorArrayPack, &[self.handle, self.flow])?;
        g.set_output_dtype(id, 0, self.dtype);
        Ok(TensorRef { node: id, port: 0 })
    }

    /// Unstacks `value` along its leading axis into the array, returning the
    /// handle with updated flow.
    pub fn unstack(&self, g: &mut GraphBuilder, value: TensorRef) -> Result<TensorArrayHandle> {
        let flow = g.add_op1(OpKind::TensorArrayUnpack, &[self.handle, value, self.flow])?;
        Ok(TensorArrayHandle { flow, ..*self })
    }

    /// Returns the number of elements as an `i64` scalar.
    pub fn size(&self, g: &mut GraphBuilder) -> Result<TensorRef> {
        g.add_op1(OpKind::TensorArraySize, &[self.handle, self.flow])
    }

    /// Looks up or creates the gradient TensorArray associated with this
    /// handle (§5.2). Writes to a gradient array accumulate partial
    /// gradients from multiple reads of the same forward location.
    pub fn grad(&self, g: &mut GraphBuilder, source: &str) -> Result<TensorArrayHandle> {
        let id = g.add_op(
            OpKind::TensorArrayGrad { source: source.to_owned() },
            &[self.handle, self.flow],
        )?;
        Ok(TensorArrayHandle {
            handle: TensorRef { node: id, port: 0 },
            flow: TensorRef { node: id, port: 1 },
            dtype: self.dtype,
        })
    }
}

impl GraphBuilder {
    /// Creates a TensorArray with `size` elements (an `i64` scalar tensor;
    /// may be zero — arrays grow on write).
    pub fn tensor_array(&mut self, dtype: DType, size: TensorRef) -> Result<TensorArrayHandle> {
        let id = self.add_op(OpKind::TensorArrayNew { dtype, accumulate: false }, &[size])?;
        Ok(TensorArrayHandle {
            handle: TensorRef { node: id, port: 0 },
            flow: TensorRef { node: id, port: 1 },
            dtype,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcf_tensor::Tensor;

    #[test]
    fn tensor_array_ops_build() {
        let mut g = GraphBuilder::new();
        let size = g.scalar_i64(3);
        let ta = g.tensor_array(DType::F32, size).unwrap();
        let i = g.scalar_i64(0);
        let v = g.constant(Tensor::ones(&[2]));
        let ta = ta.write(&mut g, i, v).unwrap();
        let r = ta.read(&mut g, i).unwrap();
        assert_eq!(g.graph().dtype(r), DType::F32);
        let packed = ta.pack(&mut g).unwrap();
        assert_eq!(g.graph().dtype(packed), DType::F32);
        let n = ta.size(&mut g).unwrap();
        assert_eq!(g.graph().dtype(n), DType::I64);
        g.finish().unwrap();
    }

    #[test]
    fn flow_threads_through_writes() {
        let mut g = GraphBuilder::new();
        let size = g.scalar_i64(2);
        let ta0 = g.tensor_array(DType::F32, size).unwrap();
        let i = g.scalar_i64(0);
        let v = g.scalar_f32(1.0);
        let ta1 = ta0.write(&mut g, i, v).unwrap();
        assert_ne!(ta0.flow, ta1.flow);
        assert_eq!(ta0.handle, ta1.handle);
    }

    #[test]
    fn grad_array_shares_dtype() {
        let mut g = GraphBuilder::new();
        let size = g.scalar_i64(2);
        let ta = g.tensor_array(DType::F32, size).unwrap();
        let gta = ta.grad(&mut g, "grad0").unwrap();
        assert_eq!(gta.dtype, DType::F32);
        assert_ne!(gta.handle, ta.handle);
    }
}
