//! The graph construction API.

use crate::context::{
    chain_to, CondBranch, CondContextInfo, Context, ContextId, ContextKind, WhileContextInfo,
};
use crate::error::GraphError;
use crate::graph::{Graph, NodeId, TensorRef};
use crate::node::Node;
use crate::op::OpKind;
use crate::Result;
use dcf_tensor::{DType, Tensor};

/// Builds a [`Graph`] incrementally, tracking the current control-flow
/// context and device scope.
///
/// The builder mirrors TensorFlow's two-level programming model (§2.1): user
/// code calls high-level operator methods, and the builder lowers
/// control-flow constructs onto the dataflow primitives. Crucially, when an
/// operation inside a conditional branch or loop body consumes a tensor
/// produced *outside* that construct, the builder transparently captures it:
/// through a `Switch` guard for conditionals and an `Enter` loop constant for
/// while-loops (§4.2).
pub struct GraphBuilder {
    graph: Graph,
    ctx_stack: Vec<ContextId>,
    device_stack: Vec<Option<String>>,
    seed_counter: u64,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// Creates a builder with an empty graph.
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            graph: Graph::new(),
            ctx_stack: vec![ContextId::ROOT],
            device_stack: vec![None],
            seed_counter: 0,
        }
    }

    /// Consumes the builder, returning the constructed graph.
    ///
    /// Validates structural invariants first.
    pub fn finish(self) -> Result<Graph> {
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Returns a view of the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Returns the current (innermost) control-flow context.
    pub fn current_ctx(&self) -> ContextId {
        *self.ctx_stack.last().expect("context stack is never empty")
    }

    /// Returns the current device scope.
    pub fn current_device(&self) -> Option<&str> {
        self.device_stack.last().and_then(|d| d.as_deref())
    }

    // ------------------------------------------------------------------
    // Scopes
    // ------------------------------------------------------------------

    /// Runs `f` with the device scope set to `device`.
    ///
    /// Nodes created inside `f` request placement on `device` (e.g.
    /// `"/machine:0/gpu:1"`). The placement is honored by the `dcf-runtime`
    /// placer; it never constrains graph construction.
    pub fn with_device<R>(
        &mut self,
        device: impl Into<String>,
        f: impl FnOnce(&mut GraphBuilder) -> R,
    ) -> R {
        self.device_stack.push(Some(device.into()));
        let r = f(self);
        self.device_stack.pop();
        r
    }

    // ------------------------------------------------------------------
    // Raw node creation and capture
    // ------------------------------------------------------------------

    /// Adds a node in an explicit context without capturing its inputs.
    ///
    /// This is the primitive used by the control-flow lowering, which wires
    /// boundary ops (Enter/Exit/Switch/Merge) across contexts by design.
    pub(crate) fn add_node_raw(
        &mut self,
        op: OpKind,
        inputs: Vec<TensorRef>,
        ctx: ContextId,
        name_hint: &str,
    ) -> Result<NodeId> {
        let in_dtypes: Vec<DType> = inputs.iter().map(|t| self.graph.dtype(*t)).collect();
        let out_dtypes = Graph::infer_dtypes(&op, &in_dtypes)?;
        let in_shapes: Vec<Option<dcf_tensor::Shape>> =
            inputs.iter().map(|t| self.graph.shape(*t).cloned()).collect();
        let out_shapes = Graph::infer_shapes(&op, &in_shapes, out_dtypes.len());
        let id = NodeId(self.graph.nodes.len());
        let name = format!("{}_{}", name_hint, id.0);
        self.graph.nodes.push(Node {
            id,
            name,
            op,
            inputs,
            control_inputs: Vec::new(),
            device: self.device_stack.last().cloned().flatten(),
            ctx,
            out_dtypes,
            out_shapes,
        });
        Ok(id)
    }

    /// Adds an operation in the current context, capturing external inputs
    /// through the enclosing control-flow constructs as needed.
    pub fn add_op(&mut self, op: OpKind, inputs: &[TensorRef]) -> Result<NodeId> {
        let cur = self.current_ctx();
        let mut captured = Vec::with_capacity(inputs.len());
        for &t in inputs {
            captured.push(self.capture(t)?);
        }
        let hint = op.name().to_owned();
        self.add_node_raw(op, captured, cur, &hint)
    }

    /// Adds an op and returns its (single) output.
    pub fn add_op1(&mut self, op: OpKind, inputs: &[TensorRef]) -> Result<TensorRef> {
        let id = self.add_op(op, inputs)?;
        Ok(TensorRef { node: id, port: 0 })
    }

    /// Adds a control-flow boundary op (`Switch`/`Merge`) in an explicit
    /// context *without* capturing its inputs.
    ///
    /// Boundary ops legitimately join values from different contexts (a
    /// conditional's `Merge` consumes both branches); automatic
    /// differentiation uses this to build the gradient `cond` machinery.
    pub fn add_boundary_op(
        &mut self,
        op: OpKind,
        inputs: &[TensorRef],
        ctx: ContextId,
    ) -> Result<NodeId> {
        let hint = op.name().to_owned();
        self.add_node_raw(op, inputs.to_vec(), ctx, &hint)
    }

    /// Adds a control dependency: `node` will not execute (within a frame
    /// and iteration) before `dep` has.
    pub fn add_control_input(&mut self, node: NodeId, dep: NodeId) {
        let n = &mut self.graph.nodes[node.0];
        if !n.control_inputs.contains(&dep) {
            n.control_inputs.push(dep);
        }
    }

    /// Overrides the requested device of an existing node.
    pub fn set_node_device(&mut self, node: NodeId, device: impl Into<String>) {
        self.graph.nodes[node.0].device = Some(device.into());
    }

    /// Maps tensor `t` into the current context, inserting `Switch` guards
    /// (for conditional branches) and constant `Enter`s (for loop bodies)
    /// along the context chain, with caching so each external tensor is
    /// captured at most once per context (§4.2).
    ///
    /// Returns an error if `t` lives in a context that is neither the
    /// current context nor an ancestor of it (for example, using a value
    /// from the other branch of a conditional).
    pub fn capture(&mut self, t: TensorRef) -> Result<TensorRef> {
        let cur = self.current_ctx();
        let pctx = self.graph.nodes[t.node.0].ctx;
        if pctx == cur {
            return Ok(t);
        }
        if !self.graph.context_is_ancestor_or_self(pctx, cur) {
            return Err(GraphError::ControlFlow(format!(
                "tensor {} (ctx {}) is not visible from ctx {}; values may only be used in the \
                 context that produced them or nested contexts",
                self.graph.nodes[t.node.0].name, pctx.0, cur.0
            )));
        }
        // Walk from just below pctx down to cur, capturing one level at a
        // time.
        let chain = chain_to(&self.graph.contexts, cur);
        let start = chain.iter().position(|&c| c == pctx).expect("pctx is an ancestor") + 1;
        let mut value = t;
        for &ctx in &chain[start..] {
            value = self.capture_one_level(ctx, value)?;
        }
        Ok(value)
    }

    /// Captures `value` (which lives in `ctx`'s parent) into `ctx`.
    fn capture_one_level(&mut self, ctx: ContextId, value: TensorRef) -> Result<TensorRef> {
        // Check the cache first.
        match &self.graph.contexts[ctx.0].kind {
            ContextKind::Cond(info) => {
                if let Some((_, inner)) = info.captures.iter().find(|(ext, _)| *ext == value) {
                    return Ok(*inner);
                }
            }
            ContextKind::While(info) => {
                if let Some((_, inner)) = info.captures.iter().find(|(ext, _)| *ext == value) {
                    return Ok(*inner);
                }
            }
            ContextKind::Root => {
                return Err(GraphError::ControlFlow("cannot capture into the root context".into()))
            }
        }
        let inner = match self.graph.contexts[ctx.0].kind.clone() {
            ContextKind::Cond(info) => {
                // One Switch per external tensor, to maximize parallelism
                // (§4.2): the guard ensures branch ops only run when the
                // branch is taken.
                let sw =
                    self.add_node_raw(OpKind::Switch, vec![value, info.pred], ctx, "CondGuard")?;
                TensorRef { node: sw, port: info.branch.port() }
            }
            ContextKind::While(info) => {
                // Loop-invariant capture: Enter(is_constant) makes the value
                // available to every iteration.
                let en = self.add_node_raw(
                    OpKind::Enter {
                        frame: info.frame.clone(),
                        is_constant: true,
                        parallel_iterations: info.parallel_iterations,
                    },
                    vec![value],
                    ctx,
                    "EnterConst",
                )?;
                TensorRef { node: en, port: 0 }
            }
            ContextKind::Root => unreachable!("checked above"),
        };
        match &mut self.graph.contexts[ctx.0].kind {
            ContextKind::Cond(info) => info.captures.push((value, inner)),
            ContextKind::While(info) => info.captures.push((value, inner)),
            ContextKind::Root => unreachable!(),
        }
        Ok(inner)
    }

    // ------------------------------------------------------------------
    // Context-stack helpers used by the control-flow lowering
    // ------------------------------------------------------------------

    pub(crate) fn push_context(&mut self, kind: ContextKind) -> ContextId {
        let id = ContextId(self.graph.contexts.len());
        let parent = self.current_ctx();
        self.graph.contexts.push(Context { id, parent: Some(parent), kind });
        self.ctx_stack.push(id);
        id
    }

    pub(crate) fn pop_context(&mut self) {
        assert!(self.ctx_stack.len() > 1, "cannot pop the root context");
        self.ctx_stack.pop();
    }

    pub(crate) fn context_info_mut(&mut self, id: ContextId) -> &mut ContextKind {
        &mut self.graph.contexts[id.0].kind
    }

    /// Re-enters an existing context (used by autodiff to add nodes to a
    /// previously built construct). Callers must pair with
    /// [`GraphBuilder::exit_reentered_context`].
    pub fn reenter_context(&mut self, id: ContextId) {
        self.ctx_stack.push(id);
    }

    /// Leaves a context entered with [`GraphBuilder::reenter_context`].
    ///
    /// # Panics
    ///
    /// Panics if no context was re-entered.
    pub fn exit_reentered_context(&mut self) {
        self.pop_context();
    }

    /// Patches input `slot` of `node` to `value` (used to close loop back
    /// edges onto dangling Merges).
    pub(crate) fn patch_input(&mut self, node: NodeId, slot: usize, value: TensorRef) {
        self.graph.nodes[node.0].inputs[slot] = value;
    }

    pub(crate) fn fresh_cond_info(&self, pred: TensorRef, branch: CondBranch) -> CondContextInfo {
        CondContextInfo {
            pred,
            branch,
            captures: Vec::new(),
            results: Vec::new(),
            merges: Vec::new(),
        }
    }

    pub(crate) fn fresh_while_info_swap(
        &self,
        frame: String,
        parallel_iterations: usize,
        swap_memory: bool,
    ) -> WhileContextInfo {
        WhileContextInfo {
            frame,
            parallel_iterations,
            enters: Vec::new(),
            merges: Vec::new(),
            body_inputs: Vec::new(),
            body_results: Vec::new(),
            exits: Vec::new(),
            loop_cond: None,
            counter_merge: None,
            counter_body: None,
            counter_exit: None,
            captures: Vec::new(),
            swap_memory,
        }
    }

    // ------------------------------------------------------------------
    // Sources
    // ------------------------------------------------------------------

    /// Adds a constant.
    ///
    /// The `Const` node is created in the root context and captured into the
    /// current context (mirroring TensorFlow, where constants are hoisted
    /// out of control-flow constructs and re-enter as loop constants), so
    /// that no source node ever lives inside a dynamic frame.
    pub fn constant(&mut self, value: Tensor) -> TensorRef {
        let id = self
            .add_node_raw(OpKind::Const(value), vec![], ContextId::ROOT, "Const")
            .expect("Const construction cannot fail");
        let t = TensorRef { node: id, port: 0 };
        self.capture(t).expect("capturing a root tensor cannot fail")
    }

    /// Adds a scalar `f32` constant.
    pub fn scalar_f32(&mut self, v: f32) -> TensorRef {
        self.constant(Tensor::scalar_f32(v))
    }

    /// Adds a scalar `i64` constant.
    pub fn scalar_i64(&mut self, v: i64) -> TensorRef {
        self.constant(Tensor::scalar_i64(v))
    }

    /// Adds a placeholder fed at run time under `name`.
    pub fn placeholder(&mut self, name: impl Into<String>, dtype: DType) -> TensorRef {
        self.placeholder_impl(name.into(), dtype, None)
    }

    /// Adds a placeholder with a declared static shape.
    ///
    /// The shape participates in static inference, letting gradient
    /// construction emit static reductions (and letting `Gather0`
    /// gradients know their table size).
    pub fn placeholder_shaped(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
        dims: &[usize],
    ) -> TensorRef {
        self.placeholder_impl(name.into(), dtype, Some(dims.to_vec()))
    }

    fn placeholder_impl(
        &mut self,
        name: String,
        dtype: DType,
        shape: Option<Vec<usize>>,
    ) -> TensorRef {
        let id = self
            .add_node_raw(
                OpKind::Placeholder { name, dtype, shape },
                vec![],
                ContextId::ROOT,
                "Placeholder",
            )
            .expect("Placeholder construction cannot fail");
        let t = TensorRef { node: id, port: 0 };
        self.capture(t).expect("capturing a root tensor cannot fail")
    }

    /// Adds a mutable variable with the given unique name and initial value.
    ///
    /// The output is the variable's current value, read once per execution.
    pub fn variable(&mut self, name: impl Into<String>, init: Tensor) -> TensorRef {
        let id = self
            .add_node_raw(
                OpKind::Variable { name: name.into(), init },
                vec![],
                ContextId::ROOT,
                "Variable",
            )
            .expect("Variable construction cannot fail");
        let t = TensorRef { node: id, port: 0 };
        self.capture(t).expect("capturing a root tensor cannot fail")
    }

    /// Adds a stateful uniform random tensor in `[lo, hi)`.
    ///
    /// `tick` anchors the op to a frame: the op executes once per iteration
    /// of `tick`'s frame, drawing fresh randomness each time. Pass any
    /// in-frame tensor (e.g. a loop variable).
    pub fn random_uniform(
        &mut self,
        dims: &[usize],
        lo: f32,
        hi: f32,
        tick: TensorRef,
    ) -> Result<TensorRef> {
        self.seed_counter += 1;
        self.add_op1(
            OpKind::RandomUniform { dims: dims.to_vec(), lo, hi, seed: self.seed_counter },
            &[tick],
        )
    }

    // ------------------------------------------------------------------
    // Math helpers
    // ------------------------------------------------------------------

    /// Elementwise addition.
    pub fn add(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Add, &[a, b])
    }

    /// Variadic addition (used for gradient accumulation).
    pub fn add_n(&mut self, ts: &[TensorRef]) -> Result<TensorRef> {
        if ts.is_empty() {
            return Err(GraphError::Arity { op: "AddN".into(), expected: 1, found: 0 });
        }
        if ts.len() == 1 {
            return Ok(ts[0]);
        }
        self.add_op1(OpKind::AddN, ts)
    }

    /// Elementwise subtraction.
    pub fn sub(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Sub, &[a, b])
    }

    /// Elementwise multiplication.
    pub fn mul(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Mul, &[a, b])
    }

    /// Elementwise division.
    pub fn div(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Div, &[a, b])
    }

    /// Elementwise maximum.
    pub fn maximum(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Maximum, &[a, b])
    }

    /// Elementwise minimum.
    pub fn minimum(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Minimum, &[a, b])
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Neg, &[a])
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Exp, &[a])
    }

    /// Elementwise natural logarithm.
    pub fn log(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Log, &[a])
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Sqrt, &[a])
    }

    /// Elementwise square.
    pub fn square(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Square, &[a])
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Abs, &[a])
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Sigmoid, &[a])
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Tanh, &[a])
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Relu, &[a])
    }

    /// Softmax along the last axis.
    pub fn softmax(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Softmax, &[a])
    }

    /// Argmax along the last axis, as `i64`.
    pub fn argmax(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ArgMax, &[a])
    }

    /// Matrix multiplication.
    pub fn matmul(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::MatMul { transpose_a: false, transpose_b: false }, &[a, b])
    }

    /// Matrix multiplication with transpose flags.
    pub fn matmul_t(
        &mut self,
        a: TensorRef,
        b: TensorRef,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::MatMul { transpose_a, transpose_b }, &[a, b])
    }

    /// Rank-2 transpose.
    pub fn transpose(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Transpose, &[a])
    }

    /// Sum of all elements.
    pub fn reduce_sum(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceSumAll, &[a])
    }

    /// Mean of all elements.
    pub fn reduce_mean(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceMeanAll, &[a])
    }

    /// Max of all elements.
    pub fn reduce_max(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceMaxAll, &[a])
    }

    /// Sum along one axis.
    pub fn reduce_sum_axis(
        &mut self,
        a: TensorRef,
        axis: i64,
        keep_dims: bool,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceSumAxis { axis, keep_dims }, &[a])
    }

    /// Mean along one axis.
    pub fn reduce_mean_axis(
        &mut self,
        a: TensorRef,
        axis: i64,
        keep_dims: bool,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceMeanAxis { axis, keep_dims }, &[a])
    }

    /// Max along one axis.
    pub fn reduce_max_axis(
        &mut self,
        a: TensorRef,
        axis: i64,
        keep_dims: bool,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceMaxAxis { axis, keep_dims }, &[a])
    }

    /// Reshape to a static shape.
    pub fn reshape(&mut self, a: TensorRef, dims: &[usize]) -> Result<TensorRef> {
        self.add_op1(OpKind::Reshape { dims: dims.to_vec() }, &[a])
    }

    /// Broadcast to a static shape.
    pub fn broadcast_to(&mut self, a: TensorRef, dims: &[usize]) -> Result<TensorRef> {
        self.add_op1(OpKind::BroadcastTo { dims: dims.to_vec() }, &[a])
    }

    /// Cast to a dtype.
    pub fn cast(&mut self, a: TensorRef, dtype: DType) -> Result<TensorRef> {
        self.add_op1(OpKind::Cast { dtype }, &[a])
    }

    /// Identity.
    pub fn identity(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Identity, &[a])
    }

    /// Identity that blocks gradients (e.g. for target-network values).
    pub fn stop_gradient(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::StopGradient, &[a])
    }

    /// Zeros with the shape and dtype of `a`.
    pub fn zeros_like(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ZerosLike, &[a])
    }

    /// Ones with the shape of `a`.
    pub fn ones_like(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::OnesLike, &[a])
    }

    /// One-hot encoding with `depth` classes.
    pub fn one_hot(&mut self, a: TensorRef, depth: usize) -> Result<TensorRef> {
        self.add_op1(OpKind::OneHot { depth }, &[a])
    }

    // ------------------------------------------------------------------
    // Runtime-shaped gradient adapters
    // ------------------------------------------------------------------

    /// Un-broadcasts `grad` to the runtime shape of `like`.
    pub fn reduce_to_like(&mut self, grad: TensorRef, like: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceToLike, &[grad, like])
    }

    /// Broadcasts `grad` to the runtime shape of `like`.
    pub fn broadcast_like(&mut self, grad: TensorRef, like: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::BroadcastLike, &[grad, like])
    }

    /// Inserts a size-1 axis at `axis`.
    pub fn expand_dims(&mut self, a: TensorRef, axis: usize) -> Result<TensorRef> {
        self.add_op1(OpKind::ExpandDims { axis }, &[a])
    }

    /// Reshapes `a` to the runtime shape of `like`.
    pub fn reshape_like(&mut self, a: TensorRef, like: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReshapeLike, &[a, like])
    }

    /// Number of elements of `a`, as `f32`.
    pub fn size_f32(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::SizeF32, &[a])
    }

    /// Extent of `axis` of `a`, as `f32`.
    pub fn dim_size_f32(&mut self, a: TensorRef, axis: usize) -> Result<TensorRef> {
        self.add_op1(OpKind::DimSizeF32 { axis }, &[a])
    }

    /// Gradient slice of `Concat0` operand `index` (inputs follow `grad`).
    pub fn concat0_grad(
        &mut self,
        grad: TensorRef,
        likes: &[TensorRef],
        index: usize,
    ) -> Result<TensorRef> {
        let mut inputs = vec![grad];
        inputs.extend_from_slice(likes);
        self.add_op1(OpKind::Concat0Grad { index }, &inputs)
    }

    /// Gradient slice of `Concat1` operand `index` (inputs follow `grad`).
    pub fn concat1_grad(
        &mut self,
        grad: TensorRef,
        likes: &[TensorRef],
        index: usize,
    ) -> Result<TensorRef> {
        let mut inputs = vec![grad];
        inputs.extend_from_slice(likes);
        self.add_op1(OpKind::Concat1Grad { index }, &inputs)
    }

    /// Gradient of `Index0`: scatters `grad` into zeros shaped like `like`.
    pub fn index0_grad(
        &mut self,
        grad: TensorRef,
        like: TensorRef,
        index: TensorRef,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::Index0Grad, &[grad, like, index])
    }

    // ------------------------------------------------------------------
    // Comparisons / logic / selection
    // ------------------------------------------------------------------

    /// Elementwise `<`.
    pub fn less(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Less, &[a, b])
    }

    /// Elementwise `<=`.
    pub fn less_equal(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::LessEqual, &[a, b])
    }

    /// Elementwise `>`.
    pub fn greater(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Greater, &[a, b])
    }

    /// Elementwise `>=`.
    pub fn greater_equal(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::GreaterEqual, &[a, b])
    }

    /// Elementwise `==`.
    pub fn equal(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Equal, &[a, b])
    }

    /// Elementwise boolean AND.
    pub fn logical_and(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::LogicalAnd, &[a, b])
    }

    /// Elementwise boolean OR.
    pub fn logical_or(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::LogicalOr, &[a, b])
    }

    /// Elementwise boolean NOT.
    pub fn logical_not(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::LogicalNot, &[a])
    }

    /// Elementwise/scalar selection `cond ? a : b`.
    pub fn select(&mut self, cond: TensorRef, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Select, &[cond, a, b])
    }

    // ------------------------------------------------------------------
    // Array manipulation
    // ------------------------------------------------------------------

    /// Concatenation along axis 0.
    pub fn concat0(&mut self, ts: &[TensorRef]) -> Result<TensorRef> {
        self.add_op1(OpKind::Concat0, ts)
    }

    /// Concatenation of rank-2 tensors along axis 1.
    pub fn concat1(&mut self, ts: &[TensorRef]) -> Result<TensorRef> {
        self.add_op1(OpKind::Concat1, ts)
    }

    /// Split a rank-2 tensor into `n` equal column blocks.
    pub fn split1(&mut self, a: TensorRef, n: usize) -> Result<Vec<TensorRef>> {
        let id = self.add_op(OpKind::Split1 { n }, &[a])?;
        Ok((0..n).map(|port| TensorRef { node: id, port }).collect())
    }

    /// Stack equal-shaped tensors along a new leading axis.
    pub fn pack(&mut self, ts: &[TensorRef]) -> Result<TensorRef> {
        self.add_op1(OpKind::Pack, ts)
    }

    /// Subtensor at a dynamic `i64` index along axis 0.
    pub fn index0(&mut self, a: TensorRef, index: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Index0, &[a, index])
    }

    /// Gather rows by an `i64` index tensor.
    pub fn gather0(&mut self, a: TensorRef, indices: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Gather0, &[a, indices])
    }

    /// Scatter-add rows into a zero tensor with `rows` rows.
    pub fn scatter_add0(
        &mut self,
        rows: usize,
        indices: TensorRef,
        updates: TensorRef,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::ScatterAdd0 { rows }, &[indices, updates])
    }

    // ------------------------------------------------------------------
    // Variables and stacks
    // ------------------------------------------------------------------

    /// Looks up the variable name behind a [`TensorRef`] produced by
    /// [`GraphBuilder::variable`], following capture chains.
    fn variable_name(&self, var: TensorRef) -> Result<String> {
        let mut t = var;
        loop {
            let node = &self.graph.nodes[t.node.0];
            match &node.op {
                OpKind::Variable { name, .. } => return Ok(name.clone()),
                // Follow capture boundary ops back to the source.
                OpKind::Enter { .. } | OpKind::Identity => t = node.inputs[0],
                OpKind::Switch => t = node.inputs[0],
                _ => {
                    return Err(GraphError::Invalid(format!(
                        "{} is not a variable reference",
                        node.name
                    )))
                }
            }
        }
    }

    /// Overwrites variable `var` with `value`; returns the written value.
    pub fn assign(&mut self, var: TensorRef, value: TensorRef) -> Result<TensorRef> {
        let name = self.variable_name(var)?;
        self.add_op1(OpKind::Assign { var: name }, &[value])
    }

    /// Adds `delta` to variable `var`; returns the updated value.
    pub fn assign_add(&mut self, var: TensorRef, delta: TensorRef) -> Result<TensorRef> {
        let name = self.variable_name(var)?;
        self.add_op1(OpKind::AssignAdd { var: name }, &[delta])
    }

    /// Subtracts `delta` from variable `var`; returns the updated value.
    ///
    /// This is the gradient-descent parameter update.
    pub fn assign_sub(&mut self, var: TensorRef, delta: TensorRef) -> Result<TensorRef> {
        let name = self.variable_name(var)?;
        self.add_op1(OpKind::AssignSub { var: name }, &[delta])
    }

    /// Creates a stack resource for saving forward intermediates (§5.1).
    ///
    /// `anchor` pins the creation to a frame (pass any tensor in the frame
    /// where the stack should be created, typically the loop's parent).
    /// `swap` marks the stack's storage eligible for device-to-host memory
    /// swapping (§5.3).
    pub fn stack_create(&mut self, anchor: TensorRef, swap: bool) -> Result<TensorRef> {
        self.add_op1(OpKind::StackCreate { swap }, &[anchor])
    }

    /// Pushes `value` into slot `index` of the stack; forwards `value`.
    pub fn stack_push(
        &mut self,
        handle: TensorRef,
        index: TensorRef,
        value: TensorRef,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::StackPush, &[handle, index, value])
    }

    /// Pops the value in slot `index` of the stack.
    ///
    /// `dtype` is the dtype of the stored value.
    pub fn stack_pop(
        &mut self,
        handle: TensorRef,
        index: TensorRef,
        dtype: DType,
    ) -> Result<TensorRef> {
        let id = self.add_op(OpKind::StackPop, &[handle, index])?;
        // StackPop's output dtype is supplied by the caller rather than
        // inferred; fix it up.
        self.graph.nodes[id.0].out_dtypes = vec![dtype];
        Ok(TensorRef { node: id, port: 0 })
    }

    /// No-op anchor node for control dependencies.
    pub fn no_op(&mut self) -> Result<NodeId> {
        self.add_op(OpKind::NoOp, &[])
    }

    /// Overrides the inferred dtype of one output of a node.
    ///
    /// Used for resource reads whose element type is not expressible in the
    /// static dtype-inference rules (TensorArray reads, stack pops).
    pub(crate) fn set_output_dtype(&mut self, node: NodeId, port: usize, dtype: DType) {
        self.graph.nodes[node.0].out_dtypes[port] = dtype;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_expression() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(2.0);
        let b = g.scalar_f32(3.0);
        let c = g.add(a, b).unwrap();
        let d = g.mul(c, a).unwrap();
        let graph = g.finish().unwrap();
        assert_eq!(graph.dtype(d), DType::F32);
        assert_eq!(graph.len(), 4);
        graph.validate().unwrap();
    }

    #[test]
    fn dtype_errors_surface() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(2.0);
        let b = g.scalar_i64(3);
        assert!(g.add(a, b).is_err());
        assert!(g.sigmoid(b).is_err());
    }

    #[test]
    fn device_scopes_nest() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(1.0);
        let (b, c) = g.with_device("/machine:0/gpu:0", |g| {
            let b = g.neg(a).unwrap();
            let c = g.with_device("/machine:1/gpu:0", |g| g.neg(b).unwrap());
            (b, c)
        });
        let d = g.neg(c).unwrap();
        let graph = g.finish().unwrap();
        assert_eq!(graph.node(b.node).device.as_deref(), Some("/machine:0/gpu:0"));
        assert_eq!(graph.node(c.node).device.as_deref(), Some("/machine:1/gpu:0"));
        assert_eq!(graph.node(d.node).device, None);
    }

    #[test]
    fn add_n_collapses_singleton() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(1.0);
        assert_eq!(g.add_n(&[a]).unwrap(), a);
        assert!(g.add_n(&[]).is_err());
        let b = g.scalar_f32(2.0);
        let s = g.add_n(&[a, b]).unwrap();
        assert_eq!(g.graph().node(s.node).inputs.len(), 2);
    }

    #[test]
    fn variable_assign_resolution() {
        let mut g = GraphBuilder::new();
        let w = g.variable("w", Tensor::scalar_f32(0.0));
        let d = g.scalar_f32(1.0);
        let upd = g.assign_add(w, d).unwrap();
        match &g.graph().node(upd.node).op {
            OpKind::AssignAdd { var } => assert_eq!(var, "w"),
            other => panic!("unexpected op {other:?}"),
        }
        // Assigning to a non-variable errors.
        assert!(g.assign(d, d).is_err());
    }

    #[test]
    fn control_inputs_deduplicate() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(1.0);
        let n = g.neg(a).unwrap();
        let dep = g.no_op().unwrap();
        g.add_control_input(n.node, dep);
        g.add_control_input(n.node, dep);
        assert_eq!(g.graph().node(n.node).control_inputs.len(), 1);
    }

    #[test]
    fn split_ports() {
        let mut g = GraphBuilder::new();
        let a = g.constant(Tensor::ones(&[2, 4]));
        let parts = g.split1(a, 2).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].port, 0);
        assert_eq!(parts[1].port, 1);
        assert_eq!(parts[0].node, parts[1].node);
    }
}
