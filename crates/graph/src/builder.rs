//! The graph construction API.

use crate::context::{
    chain_to, CondBranch, CondContextInfo, Context, ContextId, ContextKind, FunctionContextInfo,
    WhileContextInfo,
};
use crate::error::GraphError;
use crate::graph::{Function, Graph, NodeId, TensorRef};
use crate::node::Node;
use crate::op::OpKind;
use crate::Result;
use dcf_tensor::{DType, Tensor};
use std::collections::HashMap;

/// Builds a [`Graph`] incrementally, tracking the current control-flow
/// context and device scope.
///
/// The builder mirrors TensorFlow's two-level programming model (§2.1): user
/// code calls high-level operator methods, and the builder lowers
/// control-flow constructs onto the dataflow primitives. Crucially, when an
/// operation inside a conditional branch or loop body consumes a tensor
/// produced *outside* that construct, the builder transparently captures it:
/// through a `Switch` guard for conditionals and an `Enter` loop constant for
/// while-loops (§4.2).
pub struct GraphBuilder {
    graph: Graph,
    ctx_stack: Vec<ContextId>,
    device_stack: Vec<Option<String>>,
    seed_counter: u64,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// Creates a builder with an empty graph.
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            graph: Graph::new(),
            ctx_stack: vec![ContextId::ROOT],
            device_stack: vec![None],
            seed_counter: 0,
        }
    }

    /// Consumes the builder, returning the constructed graph.
    ///
    /// Validates structural invariants first.
    pub fn finish(self) -> Result<Graph> {
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Returns a view of the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Returns the current (innermost) control-flow context.
    pub fn current_ctx(&self) -> ContextId {
        *self.ctx_stack.last().expect("context stack is never empty")
    }

    /// Returns the current device scope.
    pub fn current_device(&self) -> Option<&str> {
        self.device_stack.last().and_then(|d| d.as_deref())
    }

    // ------------------------------------------------------------------
    // Scopes
    // ------------------------------------------------------------------

    /// Runs `f` with the device scope set to `device`.
    ///
    /// Nodes created inside `f` request placement on `device` (e.g.
    /// `"/machine:0/gpu:1"`). The placement is honored by the `dcf-runtime`
    /// placer; it never constrains graph construction.
    pub fn with_device<R>(
        &mut self,
        device: impl Into<String>,
        f: impl FnOnce(&mut GraphBuilder) -> R,
    ) -> R {
        self.device_stack.push(Some(device.into()));
        let r = f(self);
        self.device_stack.pop();
        r
    }

    // ------------------------------------------------------------------
    // Raw node creation and capture
    // ------------------------------------------------------------------

    /// Adds a node in an explicit context without capturing its inputs.
    ///
    /// This is the primitive used by the control-flow lowering, which wires
    /// boundary ops (Enter/Exit/Switch/Merge) across contexts by design.
    pub(crate) fn add_node_raw(
        &mut self,
        op: OpKind,
        inputs: Vec<TensorRef>,
        ctx: ContextId,
        name_hint: &str,
    ) -> Result<NodeId> {
        let in_dtypes: Vec<DType> = inputs.iter().map(|t| self.graph.dtype(*t)).collect();
        let out_dtypes = Graph::infer_dtypes(&op, &in_dtypes)?;
        let in_shapes: Vec<Option<dcf_tensor::Shape>> =
            inputs.iter().map(|t| self.graph.shape(*t).cloned()).collect();
        let out_shapes = Graph::infer_shapes(&op, &in_shapes, out_dtypes.len());
        let id = NodeId(self.graph.nodes.len());
        let name = format!("{}_{}", name_hint, id.0);
        self.graph.nodes.push(Node {
            id,
            name,
            op,
            inputs,
            control_inputs: Vec::new(),
            device: self.device_stack.last().cloned().flatten(),
            ctx,
            out_dtypes,
            out_shapes,
        });
        Ok(id)
    }

    /// Adds an operation in the current context, capturing external inputs
    /// through the enclosing control-flow constructs as needed.
    pub fn add_op(&mut self, op: OpKind, inputs: &[TensorRef]) -> Result<NodeId> {
        let cur = self.current_ctx();
        let mut captured = Vec::with_capacity(inputs.len());
        for &t in inputs {
            captured.push(self.capture(t)?);
        }
        let hint = op.name().to_owned();
        self.add_node_raw(op, captured, cur, &hint)
    }

    /// Adds an op and returns its (single) output.
    pub fn add_op1(&mut self, op: OpKind, inputs: &[TensorRef]) -> Result<TensorRef> {
        let id = self.add_op(op, inputs)?;
        Ok(TensorRef { node: id, port: 0 })
    }

    /// Adds a control-flow boundary op (`Switch`/`Merge`) in an explicit
    /// context *without* capturing its inputs.
    ///
    /// Boundary ops legitimately join values from different contexts (a
    /// conditional's `Merge` consumes both branches); automatic
    /// differentiation uses this to build the gradient `cond` machinery.
    pub fn add_boundary_op(
        &mut self,
        op: OpKind,
        inputs: &[TensorRef],
        ctx: ContextId,
    ) -> Result<NodeId> {
        let hint = op.name().to_owned();
        self.add_node_raw(op, inputs.to_vec(), ctx, &hint)
    }

    /// Adds a control dependency: `node` will not execute (within a frame
    /// and iteration) before `dep` has.
    pub fn add_control_input(&mut self, node: NodeId, dep: NodeId) {
        let n = &mut self.graph.nodes[node.0];
        if !n.control_inputs.contains(&dep) {
            n.control_inputs.push(dep);
        }
    }

    /// Overrides the requested device of an existing node.
    pub fn set_node_device(&mut self, node: NodeId, device: impl Into<String>) {
        self.graph.nodes[node.0].device = Some(device.into());
    }

    /// Maps tensor `t` into the current context, inserting `Switch` guards
    /// (for conditional branches) and constant `Enter`s (for loop bodies)
    /// along the context chain, with caching so each external tensor is
    /// captured at most once per context (§4.2).
    ///
    /// Returns an error if `t` lives in a context that is neither the
    /// current context nor an ancestor of it (for example, using a value
    /// from the other branch of a conditional).
    pub fn capture(&mut self, t: TensorRef) -> Result<TensorRef> {
        let cur = self.current_ctx();
        self.capture_into(cur, t)
    }

    /// [`GraphBuilder::capture`] into an explicit target context rather
    /// than the current one (used to retrofit captured arguments onto
    /// call sites that predate a function capture).
    fn capture_into(&mut self, target: ContextId, t: TensorRef) -> Result<TensorRef> {
        let pctx = self.graph.nodes[t.node.0].ctx;
        if pctx == target {
            return Ok(t);
        }
        if !self.graph.context_is_ancestor_or_self(pctx, target) {
            return Err(GraphError::ControlFlow(format!(
                "tensor {} (ctx {}) is not visible from ctx {}; values may only be used in the \
                 context that produced them or nested contexts",
                self.graph.nodes[t.node.0].name, pctx.0, target.0
            )));
        }
        // Walk from just below pctx down to the target, capturing one
        // level at a time.
        let chain = chain_to(&self.graph.contexts, target);
        let start = chain.iter().position(|&c| c == pctx).expect("pctx is an ancestor") + 1;
        let mut value = t;
        for &ctx in &chain[start..] {
            value = self.capture_one_level(ctx, value)?;
        }
        Ok(value)
    }

    /// Captures `value` (which lives in `ctx`'s parent) into `ctx`.
    fn capture_one_level(&mut self, ctx: ContextId, value: TensorRef) -> Result<TensorRef> {
        // Check the cache first.
        match &self.graph.contexts[ctx.0].kind {
            ContextKind::Cond(info) => {
                if let Some((_, inner)) = info.captures.iter().find(|(ext, _)| *ext == value) {
                    return Ok(*inner);
                }
            }
            ContextKind::While(info) => {
                if let Some((_, inner)) = info.captures.iter().find(|(ext, _)| *ext == value) {
                    return Ok(*inner);
                }
            }
            ContextKind::Function(info) => {
                if let Some((_, inner)) = info.captures.iter().find(|(ext, _)| *ext == value) {
                    return Ok(*inner);
                }
            }
            ContextKind::Root => {
                return Err(GraphError::ControlFlow("cannot capture into the root context".into()))
            }
        }
        let inner = match self.graph.contexts[ctx.0].kind.clone() {
            ContextKind::Cond(info) => {
                // One Switch per external tensor, to maximize parallelism
                // (§4.2): the guard ensures branch ops only run when the
                // branch is taken.
                let sw =
                    self.add_node_raw(OpKind::Switch, vec![value, info.pred], ctx, "CondGuard")?;
                TensorRef { node: sw, port: info.branch.port() }
            }
            ContextKind::While(info) => {
                // Loop-invariant capture: Enter(is_constant) makes the value
                // available to every iteration.
                let en = self.add_node_raw(
                    OpKind::Enter {
                        frame: info.frame.clone(),
                        is_constant: true,
                        parallel_iterations: info.parallel_iterations,
                    },
                    vec![value],
                    ctx,
                    "EnterConst",
                )?;
                TensorRef { node: en, port: 0 }
            }
            ContextKind::Function(info) => {
                // A captured external becomes an implicit trailing
                // parameter: the function body runs inside a dynamic frame
                // at call time, so outer values can only reach it as call
                // arguments (the builder appends them at every call site).
                let fname = info.name.clone();
                let fi = self
                    .graph
                    .functions
                    .iter()
                    .position(|f| f.name == fname)
                    .expect("function context without a registry entry");
                let fctx = self.graph.functions[fi].ctx;
                let mut internal_calls = Vec::new();
                let mut outside_calls = Vec::new();
                for n in &self.graph.nodes {
                    if let OpKind::Call { function, .. } = &n.op {
                        if *function == fname {
                            if self.graph.context_is_ancestor_or_self(fctx, n.ctx) {
                                internal_calls.push(n.id);
                            } else {
                                outside_calls.push((n.id, n.ctx));
                            }
                        }
                    }
                }
                let index = self.graph.functions[fi].params.len();
                let dtype = self.graph.dtype(value);
                let pid = self.add_node_raw(
                    OpKind::FunctionParam { function: fname.clone(), index, dtype },
                    vec![],
                    ctx,
                    "FunctionParam",
                )?;
                let inner = TensorRef { node: pid, port: 0 };
                let f = &mut self.graph.functions[fi];
                f.params.push(pid);
                f.param_dtypes.push(dtype);
                f.captured_exts.push(value);
                // Register the capture in the cache *before* patching call
                // sites: patching an outside site may recursively capture
                // the same value back into this function (mutual
                // recursion), and the cache hit is what terminates that
                // cycle.
                match &mut self.graph.contexts[ctx.0].kind {
                    ContextKind::Function(info) => info.captures.push((value, inner)),
                    _ => unreachable!("context kind changed mid-capture"),
                }
                // Recursive call sites inside the body pass the capture
                // through: inside the frame the value *is* the parameter.
                for c in internal_calls {
                    self.graph.nodes[c.0].inputs.push(inner);
                }
                // Call sites elsewhere fixed their arity when the function
                // had fewer parameters; grow them in place by capturing the
                // external into each site's own context (mutually recursive
                // bodies defined after their first call site land here).
                for (c, cctx) in outside_calls {
                    let arg = self.capture_into(cctx, value)?;
                    self.graph.nodes[c.0].inputs.push(arg);
                }
                return Ok(inner);
            }
            ContextKind::Root => unreachable!("checked above"),
        };
        match &mut self.graph.contexts[ctx.0].kind {
            ContextKind::Cond(info) => info.captures.push((value, inner)),
            ContextKind::While(info) => info.captures.push((value, inner)),
            ContextKind::Function(info) => info.captures.push((value, inner)),
            ContextKind::Root => unreachable!(),
        }
        Ok(inner)
    }

    // ------------------------------------------------------------------
    // Context-stack helpers used by the control-flow lowering
    // ------------------------------------------------------------------

    pub(crate) fn push_context(&mut self, kind: ContextKind) -> ContextId {
        let id = ContextId(self.graph.contexts.len());
        let parent = self.current_ctx();
        self.graph.contexts.push(Context { id, parent: Some(parent), kind });
        self.ctx_stack.push(id);
        id
    }

    pub(crate) fn pop_context(&mut self) {
        assert!(self.ctx_stack.len() > 1, "cannot pop the root context");
        self.ctx_stack.pop();
    }

    pub(crate) fn context_info_mut(&mut self, id: ContextId) -> &mut ContextKind {
        &mut self.graph.contexts[id.0].kind
    }

    /// Re-enters an existing context (used by autodiff to add nodes to a
    /// previously built construct). Callers must pair with
    /// [`GraphBuilder::exit_reentered_context`].
    pub fn reenter_context(&mut self, id: ContextId) {
        self.ctx_stack.push(id);
    }

    /// Leaves a context entered with [`GraphBuilder::reenter_context`].
    ///
    /// # Panics
    ///
    /// Panics if no context was re-entered.
    pub fn exit_reentered_context(&mut self) {
        self.pop_context();
    }

    /// Patches input `slot` of `node` to `value` (used to close loop back
    /// edges onto dangling Merges).
    pub(crate) fn patch_input(&mut self, node: NodeId, slot: usize, value: TensorRef) {
        self.graph.nodes[node.0].inputs[slot] = value;
    }

    pub(crate) fn fresh_cond_info(&self, pred: TensorRef, branch: CondBranch) -> CondContextInfo {
        CondContextInfo {
            pred,
            branch,
            captures: Vec::new(),
            results: Vec::new(),
            merges: Vec::new(),
        }
    }

    pub(crate) fn fresh_while_info_swap(
        &self,
        frame: String,
        parallel_iterations: usize,
        swap_memory: bool,
    ) -> WhileContextInfo {
        WhileContextInfo {
            frame,
            parallel_iterations,
            enters: Vec::new(),
            merges: Vec::new(),
            body_inputs: Vec::new(),
            body_results: Vec::new(),
            exits: Vec::new(),
            loop_cond: None,
            counter_merge: None,
            counter_body: None,
            counter_exit: None,
            captures: Vec::new(),
            swap_memory,
        }
    }

    // ------------------------------------------------------------------
    // In-graph functions
    // ------------------------------------------------------------------

    /// Declares a function signature without a body.
    ///
    /// Needed for mutual recursion: declare `f`, define `g` (which calls
    /// `f`), then define `f`. A declared-but-undefined function can be
    /// called during construction, but [`GraphBuilder::finish`] fails if
    /// any declaration is never defined. Must be invoked at the root
    /// context.
    pub fn declare_function(
        &mut self,
        name: &str,
        param_dtypes: &[DType],
        result_dtypes: &[DType],
    ) -> Result<()> {
        if self.current_ctx() != ContextId::ROOT {
            return Err(GraphError::ControlFlow(format!(
                "function '{name}' must be declared at the root context"
            )));
        }
        if self.graph.function(name).is_some() {
            return Err(GraphError::ControlFlow(format!("function '{name}' is already declared")));
        }
        if param_dtypes.is_empty() || result_dtypes.is_empty() {
            return Err(GraphError::ControlFlow(format!(
                "function '{name}' needs at least one parameter and one result"
            )));
        }
        let ctx = ContextId(self.graph.contexts.len());
        self.graph.contexts.push(Context {
            id: ctx,
            parent: Some(ContextId::ROOT),
            kind: ContextKind::Function(FunctionContextInfo {
                name: name.to_owned(),
                captures: Vec::new(),
            }),
        });
        let mut params = Vec::with_capacity(param_dtypes.len());
        for (index, &dtype) in param_dtypes.iter().enumerate() {
            let pid = self.add_node_raw(
                OpKind::FunctionParam { function: name.to_owned(), index, dtype },
                vec![],
                ctx,
                "FunctionParam",
            )?;
            params.push(pid);
        }
        self.graph.functions.push(Function {
            name: name.to_owned(),
            params,
            rets: Vec::new(),
            param_dtypes: param_dtypes.to_vec(),
            result_dtypes: result_dtypes.to_vec(),
            ctx,
            captured_exts: Vec::new(),
            explicit_params: param_dtypes.len(),
        });
        Ok(())
    }

    /// Defines an in-graph function: `body` receives the parameter tensors
    /// and returns the result tensors, which must match `result_dtypes`.
    ///
    /// The function is registered (auto-declared) *before* `body` runs, so
    /// the body may [`GraphBuilder::call`] itself — that is how recursion
    /// is expressed; at run time each recursive call pushes another
    /// dynamically tagged frame. Outer values used by the body are
    /// captured as implicit trailing parameters and appended automatically
    /// at every call site. Must be invoked at the root context.
    pub fn define_function(
        &mut self,
        name: &str,
        param_dtypes: &[DType],
        result_dtypes: &[DType],
        body: impl FnOnce(&mut GraphBuilder, &[TensorRef]) -> Result<Vec<TensorRef>>,
    ) -> Result<()> {
        if self.current_ctx() != ContextId::ROOT {
            return Err(GraphError::ControlFlow(format!(
                "function '{name}' must be defined at the root context"
            )));
        }
        if self.graph.function(name).is_none() {
            self.declare_function(name, param_dtypes, result_dtypes)?;
        }
        let fi =
            self.graph.functions.iter().position(|f| f.name == name).expect("declared just above");
        {
            let f = &self.graph.functions[fi];
            if f.is_defined() {
                return Err(GraphError::ControlFlow(format!(
                    "function '{name}' is already defined"
                )));
            }
            if f.param_dtypes[..f.explicit_params] != *param_dtypes
                || f.result_dtypes != result_dtypes
            {
                return Err(GraphError::ControlFlow(format!(
                    "function '{name}': definition signature disagrees with its declaration"
                )));
            }
        }
        let fctx = self.graph.functions[fi].ctx;
        let params: Vec<TensorRef> = self.graph.functions[fi]
            .params
            .iter()
            .map(|&p| TensorRef { node: p, port: 0 })
            .collect();
        self.reenter_context(fctx);
        let results = body(self, &params);
        // Results are captured into the body context (a returned outer
        // value becomes one more implicit parameter) and anchored with one
        // FunctionRet per result, still inside the context so `capture`
        // resolves relative to it.
        let rets = results.and_then(|results| {
            if results.len() != result_dtypes.len() {
                return Err(GraphError::Arity {
                    op: format!("define_function('{name}')"),
                    expected: result_dtypes.len(),
                    found: results.len(),
                });
            }
            let mut rets = Vec::with_capacity(results.len());
            for (index, &r) in results.iter().enumerate() {
                let got = self.graph.dtype(r);
                if got != result_dtypes[index] {
                    return Err(GraphError::dtype(
                        format!("define_function('{name}') result {index}").as_str(),
                        result_dtypes[index],
                        got,
                    ));
                }
                let rin = self.capture(r)?;
                let rid = self.add_node_raw(
                    OpKind::FunctionRet { function: name.to_owned(), index },
                    vec![rin],
                    fctx,
                    "FunctionRet",
                )?;
                rets.push(rid);
            }
            Ok(rets)
        });
        self.exit_reentered_context();
        self.graph.functions[fi].rets = rets?;
        Ok(())
    }

    /// Calls an in-graph function with the explicitly declared arguments;
    /// returns one tensor per declared result.
    ///
    /// Captured externals are appended automatically. The call may target
    /// a function that is declared but not yet defined (recursion); the
    /// graph only validates at [`GraphBuilder::finish`].
    pub fn call(&mut self, name: &str, args: &[TensorRef]) -> Result<Vec<TensorRef>> {
        let Some(f) = self.graph.function(name) else {
            return Err(GraphError::ControlFlow(format!("call of unknown function '{name}'")));
        };
        if args.len() != f.explicit_params {
            return Err(GraphError::Arity {
                op: format!("Call('{name}')"),
                expected: f.explicit_params,
                found: args.len(),
            });
        }
        for (i, &a) in args.iter().enumerate() {
            let want = f.param_dtypes[i];
            let got = self.graph.dtype(a);
            if got != want {
                return Err(GraphError::dtype(
                    format!("Call('{name}') arg {i}").as_str(),
                    want,
                    got,
                ));
            }
        }
        let captured = f.captured_exts.clone();
        let results = f.result_dtypes.clone();
        let mut inputs = Vec::with_capacity(args.len() + captured.len());
        for &a in args {
            inputs.push(self.capture(a)?);
        }
        for &ext in &captured {
            inputs.push(self.capture(ext)?);
        }
        let cur = self.current_ctx();
        let id = self.add_node_raw(
            OpKind::Call { function: name.to_owned(), results: results.clone() },
            inputs,
            cur,
            "Call",
        )?;
        Ok((0..results.len()).map(|port| TensorRef { node: id, port }).collect())
    }

    /// [`GraphBuilder::call`] for single-result functions.
    pub fn call1(&mut self, name: &str, args: &[TensorRef]) -> Result<TensorRef> {
        let outs = self.call(name, args)?;
        if outs.len() != 1 {
            return Err(GraphError::Invalid(format!(
                "call1: function '{name}' has {} results",
                outs.len()
            )));
        }
        Ok(outs[0])
    }

    /// Clones the body of a defined function into the current context,
    /// substituting `param_map[i]` for parameter `i`. Returns the cloned
    /// tensors that fed each `FunctionRet`, in result order.
    ///
    /// Automatic differentiation uses this to rematerialize a function's
    /// forward computation inside the gradient function's own body (the
    /// per-call-frame intermediates of the original call are gone by the
    /// time the gradient runs). Nested control-flow contexts are cloned
    /// with fresh ids, and cloned loop frames get fresh names so the two
    /// copies never alias in the executor's frame tables. Recursive calls
    /// inside the body still target the original function.
    pub fn clone_function_body(
        &mut self,
        name: &str,
        param_map: &[TensorRef],
    ) -> Result<Vec<TensorRef>> {
        let fi = self
            .graph
            .functions
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| GraphError::ControlFlow(format!("unknown function '{name}'")))?;
        let f = self.graph.functions[fi].clone();
        if !f.is_defined() {
            return Err(GraphError::ControlFlow(format!(
                "cannot clone undefined function '{name}'"
            )));
        }
        if param_map.len() != f.params.len() {
            return Err(GraphError::Arity {
                op: format!("clone_function_body('{name}')"),
                expected: f.params.len(),
                found: param_map.len(),
            });
        }
        let target = self.current_ctx();
        // Clone nested contexts (ids grow parent-before-child, so a single
        // ascending pass sees each parent before its children). Loop frames
        // are renamed to keep Enter counts per frame name exact.
        let mut ctx_map: HashMap<ContextId, ContextId> = HashMap::new();
        ctx_map.insert(f.ctx, target);
        let mut frame_rename: HashMap<String, String> = HashMap::new();
        let first_new_ctx = self.graph.contexts.len();
        for i in 0..first_new_ctx {
            let cid = ContextId(i);
            if cid == f.ctx || !self.graph.context_is_ancestor_or_self(f.ctx, cid) {
                continue;
            }
            let c = self.graph.contexts[i].clone();
            let new_id = ContextId(self.graph.contexts.len());
            let mut kind = c.kind;
            if let ContextKind::While(w) = &mut kind {
                let renamed = format!("{}@clone{}", w.frame, new_id.0);
                frame_rename.insert(std::mem::replace(&mut w.frame, renamed.clone()), renamed);
            }
            let parent = *ctx_map
                .get(&c.parent.expect("non-root context has a parent"))
                .expect("parent context cloned before its children");
            self.graph.contexts.push(Context { id: new_id, parent: Some(parent), kind });
            ctx_map.insert(cid, new_id);
        }
        // Clone body nodes in two passes: allocate all clones first (loop
        // back edges make a Merge consume a NextIteration that appears
        // *later* in any topological order), then remap every edge.
        let mut node_map: HashMap<NodeId, TensorRef> = HashMap::new();
        for (j, &p) in f.params.iter().enumerate() {
            node_map.insert(p, param_map[j]);
        }
        let mut ret_input_refs: Vec<Option<TensorRef>> = vec![None; f.rets.len()];
        // (clone id, original inputs, original control inputs)
        let mut pending: Vec<(NodeId, Vec<TensorRef>, Vec<NodeId>)> = Vec::new();
        let body_nodes: Vec<NodeId> = self
            .graph
            .nodes
            .iter()
            .filter(|n| self.graph.context_is_ancestor_or_self(f.ctx, n.ctx))
            .map(|n| n.id)
            .collect();
        for &nid in &body_nodes {
            let n = self.graph.nodes[nid.0].clone();
            match &n.op {
                OpKind::FunctionParam { function, .. } if *function == f.name => continue,
                OpKind::FunctionRet { function, index } if *function == f.name => {
                    ret_input_refs[*index] = Some(n.inputs[0]);
                    continue;
                }
                _ => {}
            }
            let mut op = n.op.clone();
            if let OpKind::Enter { frame, .. } = &mut op {
                if let Some(renamed) = frame_rename.get(frame) {
                    *frame = renamed.clone();
                }
            }
            let id = NodeId(self.graph.nodes.len());
            self.graph.nodes.push(Node {
                id,
                name: format!("{}_clone_{}", n.name, id.0),
                op,
                inputs: Vec::new(),
                control_inputs: Vec::new(),
                device: n.device.clone(),
                ctx: ctx_map[&n.ctx],
                out_dtypes: n.out_dtypes.clone(),
                out_shapes: n.out_shapes.clone(),
            });
            node_map.insert(nid, TensorRef { node: id, port: 0 });
            pending.push((id, n.inputs, n.control_inputs));
        }
        let remap = |node_map: &HashMap<NodeId, TensorRef>, t: TensorRef| -> Result<TensorRef> {
            match node_map.get(&t.node) {
                Some(m) if t.port == 0 => Ok(*m),
                Some(m) => Ok(TensorRef { node: m.node, port: t.port }),
                None => Err(GraphError::DanglingRef(format!(
                    "clone_function_body('{name}'): body consumes {:?} from outside the body",
                    t.node
                ))),
            }
        };
        for (id, inputs, control_inputs) in pending {
            let mut new_inputs = Vec::with_capacity(inputs.len());
            for inp in inputs {
                new_inputs.push(remap(&node_map, inp)?);
            }
            let mut new_controls = Vec::with_capacity(control_inputs.len());
            for c in control_inputs {
                new_controls.push(remap(&node_map, TensorRef { node: c, port: 0 })?.node);
            }
            self.graph.nodes[id.0].inputs = new_inputs;
            self.graph.nodes[id.0].control_inputs = new_controls;
        }
        let mut ret_inputs: Vec<Option<TensorRef>> = Vec::with_capacity(ret_input_refs.len());
        for r in ret_input_refs {
            ret_inputs.push(match r {
                Some(t) => Some(remap(&node_map, t)?),
                None => None,
            });
        }
        // Patch the metadata of the cloned contexts to point at the clones.
        let mut bad: Option<NodeId> = None;
        crate::graph::for_each_context_ref(&mut self.graph.contexts[first_new_ctx..], |t| {
            match node_map.get(&t.node) {
                Some(m) => t.node = m.node,
                None if bad.is_none() => bad = Some(t.node),
                None => {}
            }
        });
        if let Some(id) = bad {
            return Err(GraphError::DanglingRef(format!(
                "clone_function_body('{name}'): cloned context references unmapped node {id:?}"
            )));
        }
        ret_inputs
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| {
                    GraphError::ControlFlow(format!(
                        "clone_function_body('{name}'): result {i} was never produced"
                    ))
                })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Sources
    // ------------------------------------------------------------------

    /// Adds a constant.
    ///
    /// The `Const` node is created in the root context and captured into the
    /// current context (mirroring TensorFlow, where constants are hoisted
    /// out of control-flow constructs and re-enter as loop constants), so
    /// that no source node ever lives inside a dynamic frame.
    pub fn constant(&mut self, value: Tensor) -> TensorRef {
        let id = self
            .add_node_raw(OpKind::Const(value), vec![], ContextId::ROOT, "Const")
            .expect("Const construction cannot fail");
        let t = TensorRef { node: id, port: 0 };
        self.capture(t).expect("capturing a root tensor cannot fail")
    }

    /// Adds a scalar `f32` constant.
    pub fn scalar_f32(&mut self, v: f32) -> TensorRef {
        self.constant(Tensor::scalar_f32(v))
    }

    /// Adds a scalar `i64` constant.
    pub fn scalar_i64(&mut self, v: i64) -> TensorRef {
        self.constant(Tensor::scalar_i64(v))
    }

    /// Adds a placeholder fed at run time under `name`.
    pub fn placeholder(&mut self, name: impl Into<String>, dtype: DType) -> TensorRef {
        self.placeholder_impl(name.into(), dtype, None)
    }

    /// Adds a placeholder with a declared static shape.
    ///
    /// The shape participates in static inference, letting gradient
    /// construction emit static reductions (and letting `Gather0`
    /// gradients know their table size).
    pub fn placeholder_shaped(
        &mut self,
        name: impl Into<String>,
        dtype: DType,
        dims: &[usize],
    ) -> TensorRef {
        self.placeholder_impl(name.into(), dtype, Some(dims.to_vec()))
    }

    fn placeholder_impl(
        &mut self,
        name: String,
        dtype: DType,
        shape: Option<Vec<usize>>,
    ) -> TensorRef {
        let id = self
            .add_node_raw(
                OpKind::Placeholder { name, dtype, shape },
                vec![],
                ContextId::ROOT,
                "Placeholder",
            )
            .expect("Placeholder construction cannot fail");
        let t = TensorRef { node: id, port: 0 };
        self.capture(t).expect("capturing a root tensor cannot fail")
    }

    /// Adds a mutable variable with the given unique name and initial value.
    ///
    /// The output is the variable's current value, read once per execution.
    pub fn variable(&mut self, name: impl Into<String>, init: Tensor) -> TensorRef {
        let id = self
            .add_node_raw(
                OpKind::Variable { name: name.into(), init },
                vec![],
                ContextId::ROOT,
                "Variable",
            )
            .expect("Variable construction cannot fail");
        let t = TensorRef { node: id, port: 0 };
        self.capture(t).expect("capturing a root tensor cannot fail")
    }

    /// Adds a stateful uniform random tensor in `[lo, hi)`.
    ///
    /// `tick` anchors the op to a frame: the op executes once per iteration
    /// of `tick`'s frame, drawing fresh randomness each time. Pass any
    /// in-frame tensor (e.g. a loop variable).
    pub fn random_uniform(
        &mut self,
        dims: &[usize],
        lo: f32,
        hi: f32,
        tick: TensorRef,
    ) -> Result<TensorRef> {
        self.seed_counter += 1;
        self.add_op1(
            OpKind::RandomUniform { dims: dims.to_vec(), lo, hi, seed: self.seed_counter },
            &[tick],
        )
    }

    // ------------------------------------------------------------------
    // Math helpers
    // ------------------------------------------------------------------

    /// Elementwise addition.
    pub fn add(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Add, &[a, b])
    }

    /// Variadic addition (used for gradient accumulation).
    pub fn add_n(&mut self, ts: &[TensorRef]) -> Result<TensorRef> {
        if ts.is_empty() {
            return Err(GraphError::Arity { op: "AddN".into(), expected: 1, found: 0 });
        }
        if ts.len() == 1 {
            return Ok(ts[0]);
        }
        self.add_op1(OpKind::AddN, ts)
    }

    /// Elementwise subtraction.
    pub fn sub(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Sub, &[a, b])
    }

    /// Elementwise multiplication.
    pub fn mul(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Mul, &[a, b])
    }

    /// Elementwise division.
    pub fn div(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Div, &[a, b])
    }

    /// Elementwise maximum.
    pub fn maximum(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Maximum, &[a, b])
    }

    /// Elementwise minimum.
    pub fn minimum(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Minimum, &[a, b])
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Neg, &[a])
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Exp, &[a])
    }

    /// Elementwise natural logarithm.
    pub fn log(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Log, &[a])
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Sqrt, &[a])
    }

    /// Elementwise square.
    pub fn square(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Square, &[a])
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Abs, &[a])
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Sigmoid, &[a])
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Tanh, &[a])
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Relu, &[a])
    }

    /// Softmax along the last axis.
    pub fn softmax(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Softmax, &[a])
    }

    /// Argmax along the last axis, as `i64`.
    pub fn argmax(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ArgMax, &[a])
    }

    /// Matrix multiplication.
    pub fn matmul(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::MatMul { transpose_a: false, transpose_b: false }, &[a, b])
    }

    /// Matrix multiplication with transpose flags.
    pub fn matmul_t(
        &mut self,
        a: TensorRef,
        b: TensorRef,
        transpose_a: bool,
        transpose_b: bool,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::MatMul { transpose_a, transpose_b }, &[a, b])
    }

    /// Rank-2 transpose.
    pub fn transpose(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Transpose, &[a])
    }

    /// Sum of all elements.
    pub fn reduce_sum(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceSumAll, &[a])
    }

    /// Mean of all elements.
    pub fn reduce_mean(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceMeanAll, &[a])
    }

    /// Max of all elements.
    pub fn reduce_max(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceMaxAll, &[a])
    }

    /// Sum along one axis.
    pub fn reduce_sum_axis(
        &mut self,
        a: TensorRef,
        axis: i64,
        keep_dims: bool,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceSumAxis { axis, keep_dims }, &[a])
    }

    /// Mean along one axis.
    pub fn reduce_mean_axis(
        &mut self,
        a: TensorRef,
        axis: i64,
        keep_dims: bool,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceMeanAxis { axis, keep_dims }, &[a])
    }

    /// Max along one axis.
    pub fn reduce_max_axis(
        &mut self,
        a: TensorRef,
        axis: i64,
        keep_dims: bool,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceMaxAxis { axis, keep_dims }, &[a])
    }

    /// Reshape to a static shape.
    pub fn reshape(&mut self, a: TensorRef, dims: &[usize]) -> Result<TensorRef> {
        self.add_op1(OpKind::Reshape { dims: dims.to_vec() }, &[a])
    }

    /// Broadcast to a static shape.
    pub fn broadcast_to(&mut self, a: TensorRef, dims: &[usize]) -> Result<TensorRef> {
        self.add_op1(OpKind::BroadcastTo { dims: dims.to_vec() }, &[a])
    }

    /// Cast to a dtype.
    pub fn cast(&mut self, a: TensorRef, dtype: DType) -> Result<TensorRef> {
        self.add_op1(OpKind::Cast { dtype }, &[a])
    }

    /// Identity.
    pub fn identity(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Identity, &[a])
    }

    /// Identity that blocks gradients (e.g. for target-network values).
    pub fn stop_gradient(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::StopGradient, &[a])
    }

    /// Zeros with the shape and dtype of `a`.
    pub fn zeros_like(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ZerosLike, &[a])
    }

    /// Ones with the shape of `a`.
    pub fn ones_like(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::OnesLike, &[a])
    }

    /// One-hot encoding with `depth` classes.
    pub fn one_hot(&mut self, a: TensorRef, depth: usize) -> Result<TensorRef> {
        self.add_op1(OpKind::OneHot { depth }, &[a])
    }

    // ------------------------------------------------------------------
    // Runtime-shaped gradient adapters
    // ------------------------------------------------------------------

    /// Un-broadcasts `grad` to the runtime shape of `like`.
    pub fn reduce_to_like(&mut self, grad: TensorRef, like: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReduceToLike, &[grad, like])
    }

    /// Broadcasts `grad` to the runtime shape of `like`.
    pub fn broadcast_like(&mut self, grad: TensorRef, like: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::BroadcastLike, &[grad, like])
    }

    /// Inserts a size-1 axis at `axis`.
    pub fn expand_dims(&mut self, a: TensorRef, axis: usize) -> Result<TensorRef> {
        self.add_op1(OpKind::ExpandDims { axis }, &[a])
    }

    /// Reshapes `a` to the runtime shape of `like`.
    pub fn reshape_like(&mut self, a: TensorRef, like: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::ReshapeLike, &[a, like])
    }

    /// Number of elements of `a`, as `f32`.
    pub fn size_f32(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::SizeF32, &[a])
    }

    /// Extent of `axis` of `a`, as `f32`.
    pub fn dim_size_f32(&mut self, a: TensorRef, axis: usize) -> Result<TensorRef> {
        self.add_op1(OpKind::DimSizeF32 { axis }, &[a])
    }

    /// Gradient slice of `Concat0` operand `index` (inputs follow `grad`).
    pub fn concat0_grad(
        &mut self,
        grad: TensorRef,
        likes: &[TensorRef],
        index: usize,
    ) -> Result<TensorRef> {
        let mut inputs = vec![grad];
        inputs.extend_from_slice(likes);
        self.add_op1(OpKind::Concat0Grad { index }, &inputs)
    }

    /// Gradient slice of `Concat1` operand `index` (inputs follow `grad`).
    pub fn concat1_grad(
        &mut self,
        grad: TensorRef,
        likes: &[TensorRef],
        index: usize,
    ) -> Result<TensorRef> {
        let mut inputs = vec![grad];
        inputs.extend_from_slice(likes);
        self.add_op1(OpKind::Concat1Grad { index }, &inputs)
    }

    /// Gradient of `Index0`: scatters `grad` into zeros shaped like `like`.
    pub fn index0_grad(
        &mut self,
        grad: TensorRef,
        like: TensorRef,
        index: TensorRef,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::Index0Grad, &[grad, like, index])
    }

    // ------------------------------------------------------------------
    // Comparisons / logic / selection
    // ------------------------------------------------------------------

    /// Elementwise `<`.
    pub fn less(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Less, &[a, b])
    }

    /// Elementwise `<=`.
    pub fn less_equal(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::LessEqual, &[a, b])
    }

    /// Elementwise `>`.
    pub fn greater(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Greater, &[a, b])
    }

    /// Elementwise `>=`.
    pub fn greater_equal(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::GreaterEqual, &[a, b])
    }

    /// Elementwise `==`.
    pub fn equal(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Equal, &[a, b])
    }

    /// Elementwise boolean AND.
    pub fn logical_and(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::LogicalAnd, &[a, b])
    }

    /// Elementwise boolean OR.
    pub fn logical_or(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::LogicalOr, &[a, b])
    }

    /// Elementwise boolean NOT.
    pub fn logical_not(&mut self, a: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::LogicalNot, &[a])
    }

    /// Elementwise/scalar selection `cond ? a : b`.
    pub fn select(&mut self, cond: TensorRef, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Select, &[cond, a, b])
    }

    // ------------------------------------------------------------------
    // Array manipulation
    // ------------------------------------------------------------------

    /// Concatenation along axis 0.
    pub fn concat0(&mut self, ts: &[TensorRef]) -> Result<TensorRef> {
        self.add_op1(OpKind::Concat0, ts)
    }

    /// Concatenation of rank-2 tensors along axis 1.
    pub fn concat1(&mut self, ts: &[TensorRef]) -> Result<TensorRef> {
        self.add_op1(OpKind::Concat1, ts)
    }

    /// Split a rank-2 tensor into `n` equal column blocks.
    pub fn split1(&mut self, a: TensorRef, n: usize) -> Result<Vec<TensorRef>> {
        let id = self.add_op(OpKind::Split1 { n }, &[a])?;
        Ok((0..n).map(|port| TensorRef { node: id, port }).collect())
    }

    /// Stack equal-shaped tensors along a new leading axis.
    pub fn pack(&mut self, ts: &[TensorRef]) -> Result<TensorRef> {
        self.add_op1(OpKind::Pack, ts)
    }

    /// Subtensor at a dynamic `i64` index along axis 0.
    pub fn index0(&mut self, a: TensorRef, index: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Index0, &[a, index])
    }

    /// Gather rows by an `i64` index tensor.
    pub fn gather0(&mut self, a: TensorRef, indices: TensorRef) -> Result<TensorRef> {
        self.add_op1(OpKind::Gather0, &[a, indices])
    }

    /// Scatter-add rows into a zero tensor with `rows` rows.
    pub fn scatter_add0(
        &mut self,
        rows: usize,
        indices: TensorRef,
        updates: TensorRef,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::ScatterAdd0 { rows }, &[indices, updates])
    }

    // ------------------------------------------------------------------
    // Variables and stacks
    // ------------------------------------------------------------------

    /// Looks up the variable name behind a [`TensorRef`] produced by
    /// [`GraphBuilder::variable`], following capture chains.
    fn variable_name(&self, var: TensorRef) -> Result<String> {
        let mut t = var;
        loop {
            let node = &self.graph.nodes[t.node.0];
            match &node.op {
                OpKind::Variable { name, .. } => return Ok(name.clone()),
                // Follow capture boundary ops back to the source.
                OpKind::Enter { .. } | OpKind::Identity => t = node.inputs[0],
                OpKind::Switch => t = node.inputs[0],
                _ => {
                    return Err(GraphError::Invalid(format!(
                        "{} is not a variable reference",
                        node.name
                    )))
                }
            }
        }
    }

    /// Overwrites variable `var` with `value`; returns the written value.
    pub fn assign(&mut self, var: TensorRef, value: TensorRef) -> Result<TensorRef> {
        let name = self.variable_name(var)?;
        self.add_op1(OpKind::Assign { var: name }, &[value])
    }

    /// Adds `delta` to variable `var`; returns the updated value.
    pub fn assign_add(&mut self, var: TensorRef, delta: TensorRef) -> Result<TensorRef> {
        let name = self.variable_name(var)?;
        self.add_op1(OpKind::AssignAdd { var: name }, &[delta])
    }

    /// Subtracts `delta` from variable `var`; returns the updated value.
    ///
    /// This is the gradient-descent parameter update.
    pub fn assign_sub(&mut self, var: TensorRef, delta: TensorRef) -> Result<TensorRef> {
        let name = self.variable_name(var)?;
        self.add_op1(OpKind::AssignSub { var: name }, &[delta])
    }

    /// Creates a stack resource for saving forward intermediates (§5.1).
    ///
    /// `anchor` pins the creation to a frame (pass any tensor in the frame
    /// where the stack should be created, typically the loop's parent).
    /// `swap` marks the stack's storage eligible for device-to-host memory
    /// swapping (§5.3).
    pub fn stack_create(&mut self, anchor: TensorRef, swap: bool) -> Result<TensorRef> {
        self.add_op1(OpKind::StackCreate { swap }, &[anchor])
    }

    /// Pushes `value` into slot `index` of the stack; forwards `value`.
    pub fn stack_push(
        &mut self,
        handle: TensorRef,
        index: TensorRef,
        value: TensorRef,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::StackPush, &[handle, index, value])
    }

    /// Pops the value in slot `index` of the stack.
    ///
    /// `dtype` is the dtype of the stored value.
    pub fn stack_pop(
        &mut self,
        handle: TensorRef,
        index: TensorRef,
        dtype: DType,
    ) -> Result<TensorRef> {
        let id = self.add_op(OpKind::StackPop, &[handle, index])?;
        // StackPop's output dtype is supplied by the caller rather than
        // inferred; fix it up.
        self.graph.nodes[id.0].out_dtypes = vec![dtype];
        Ok(TensorRef { node: id, port: 0 })
    }

    /// Gathers the per-stream state cell `cell` for each stream slot in
    /// `slots` (`i64` `[B]`), producing a `[B, dims…]` `f32` batch.
    ///
    /// Slots are minted server-side by the serving tier's continuous
    /// batcher; the same fed slot batch must be passed to the matching
    /// [`GraphBuilder::stream_state_write`] so each stream reads and
    /// writes its own row.
    pub fn stream_state_read(&mut self, slots: TensorRef, cell: &str) -> Result<TensorRef> {
        self.add_op1(OpKind::StreamStateRead { cell: cell.to_owned() }, &[slots])
    }

    /// Scatters the rows of `value` (`[B, dims…]`) into the per-stream
    /// state cell `cell` for each stream slot in `slots`; forwards
    /// `value`, so fetching the output forces the write.
    pub fn stream_state_write(
        &mut self,
        slots: TensorRef,
        value: TensorRef,
        cell: &str,
    ) -> Result<TensorRef> {
        self.add_op1(OpKind::StreamStateWrite { cell: cell.to_owned() }, &[slots, value])
    }

    /// No-op anchor node for control dependencies.
    pub fn no_op(&mut self) -> Result<NodeId> {
        self.add_op(OpKind::NoOp, &[])
    }

    /// Overrides the inferred dtype of one output of a node.
    ///
    /// Used for resource reads whose element type is not expressible in the
    /// static dtype-inference rules (TensorArray reads, stack pops).
    pub(crate) fn set_output_dtype(&mut self, node: NodeId, port: usize, dtype: DType) {
        self.graph.nodes[node.0].out_dtypes[port] = dtype;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_expression() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(2.0);
        let b = g.scalar_f32(3.0);
        let c = g.add(a, b).unwrap();
        let d = g.mul(c, a).unwrap();
        let graph = g.finish().unwrap();
        assert_eq!(graph.dtype(d), DType::F32);
        assert_eq!(graph.len(), 4);
        graph.validate().unwrap();
    }

    #[test]
    fn dtype_errors_surface() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(2.0);
        let b = g.scalar_i64(3);
        assert!(g.add(a, b).is_err());
        assert!(g.sigmoid(b).is_err());
    }

    #[test]
    fn device_scopes_nest() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(1.0);
        let (b, c) = g.with_device("/machine:0/gpu:0", |g| {
            let b = g.neg(a).unwrap();
            let c = g.with_device("/machine:1/gpu:0", |g| g.neg(b).unwrap());
            (b, c)
        });
        let d = g.neg(c).unwrap();
        let graph = g.finish().unwrap();
        assert_eq!(graph.node(b.node).device.as_deref(), Some("/machine:0/gpu:0"));
        assert_eq!(graph.node(c.node).device.as_deref(), Some("/machine:1/gpu:0"));
        assert_eq!(graph.node(d.node).device, None);
    }

    #[test]
    fn add_n_collapses_singleton() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(1.0);
        assert_eq!(g.add_n(&[a]).unwrap(), a);
        assert!(g.add_n(&[]).is_err());
        let b = g.scalar_f32(2.0);
        let s = g.add_n(&[a, b]).unwrap();
        assert_eq!(g.graph().node(s.node).inputs.len(), 2);
    }

    #[test]
    fn variable_assign_resolution() {
        let mut g = GraphBuilder::new();
        let w = g.variable("w", Tensor::scalar_f32(0.0));
        let d = g.scalar_f32(1.0);
        let upd = g.assign_add(w, d).unwrap();
        match &g.graph().node(upd.node).op {
            OpKind::AssignAdd { var } => assert_eq!(var, "w"),
            other => panic!("unexpected op {other:?}"),
        }
        // Assigning to a non-variable errors.
        assert!(g.assign(d, d).is_err());
    }

    #[test]
    fn control_inputs_deduplicate() {
        let mut g = GraphBuilder::new();
        let a = g.scalar_f32(1.0);
        let n = g.neg(a).unwrap();
        let dep = g.no_op().unwrap();
        g.add_control_input(n.node, dep);
        g.add_control_input(n.node, dep);
        assert_eq!(g.graph().node(n.node).control_inputs.len(), 1);
    }

    #[test]
    fn split_ports() {
        let mut g = GraphBuilder::new();
        let a = g.constant(Tensor::ones(&[2, 4]));
        let parts = g.split1(a, 2).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].port, 0);
        assert_eq!(parts[1].port, 1);
        assert_eq!(parts[0].node, parts[1].node);
    }
}
