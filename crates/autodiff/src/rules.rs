//! Per-operation gradient rules.
//!
//! Each rule receives the already-summed output gradients of one forward
//! node and returns one optional gradient per input. Forward values the
//! rules need (operands, outputs) go through [`Engine::resolve`], which
//! inside gradient loops turns them into stack saves (§5.1).
//!
//! The control-flow rules implement the paper's duality: the gradient of
//! `Merge` is a pair of `Switch`es on the original predicate, and the
//! gradient of a guard `Switch` is a `Merge` (with branch-guarded zeros
//! substituted for missing branch gradients), so the gradient of a `cond`
//! is itself a `cond`.

use crate::grad::Engine;
use crate::Result;
use dcf_graph::{ContextKind, GraphBuilder, GraphError, NodeId, OpKind, TensorRef};
use dcf_tensor::Shape;

impl Engine {
    pub(crate) fn rule(
        &mut self,
        gb: &mut GraphBuilder,
        nid: NodeId,
        op: &OpKind,
        out_grads: &[Option<TensorRef>],
    ) -> Result<Vec<Option<TensorRef>>> {
        use OpKind::*;
        let inputs: Vec<TensorRef> = gb.graph().node(nid).inputs.clone();
        let n_in = inputs.len();
        let none = |n: usize| Ok(vec![None; n]);
        let g0 = out_grads.first().copied().flatten();

        match op {
            // ---------------- Sources and stops ----------------
            Const(_) | Placeholder { .. } | Variable { .. } | RandomUniform { .. } => none(n_in),
            Less
            | LessEqual
            | Greater
            | GreaterEqual
            | Equal
            | LogicalAnd
            | LogicalOr
            | LogicalNot
            | ArgMax
            | OneHot { .. }
            | SizeF32
            | DimSizeF32 { .. } => none(n_in),
            Assign { .. }
            | AssignAdd { .. }
            | AssignSub { .. }
            | NoOp
            | ControlTrigger
            | Send { .. }
            | Recv { .. }
            | StackCreate { .. }
            | StackPush
            | StackPop
            | TensorArrayNew { .. }
            | TensorArraySize
            | TensorArrayGrad { .. } => none(n_in),

            // ---------------- Pass-through ----------------
            Identity | LoopCond => Ok(vec![g0]),
            StopGradient => none(n_in),
            Enter { is_constant, .. } => {
                // Constant enters are resolved away before rules run; loop
                // variable enters are handled by the loop supernode. If a
                // gradient still lands here, forward it to the input.
                let _ = is_constant;
                Ok(vec![g0])
            }
            Exit | NextIteration => Ok(vec![g0]),

            // ---------------- Control flow (cond) ----------------
            Merge => self.merge_grad(gb, nid, &inputs, g0),
            Switch => self.switch_grad(gb, nid, &inputs, out_grads),

            // ---------------- Arithmetic ----------------
            Add => {
                let Some(g) = g0 else { return none(n_in) };
                let ga = self.unbroadcast(gb, g, inputs[0])?;
                let gbr = self.unbroadcast(gb, g, inputs[1])?;
                Ok(vec![Some(ga), Some(gbr)])
            }
            AddN => Ok(vec![g0; n_in]),
            Sub => {
                let Some(g) = g0 else { return none(n_in) };
                let ga = self.unbroadcast(gb, g, inputs[0])?;
                let ng = gb.neg(g)?;
                let gbr = self.unbroadcast(gb, ng, inputs[1])?;
                Ok(vec![Some(ga), Some(gbr)])
            }
            Mul => {
                let Some(g) = g0 else { return none(n_in) };
                let a = self.resolve(gb, inputs[0])?;
                let b = self.resolve(gb, inputs[1])?;
                let gb_a = gb.mul(g, b)?;
                let gb_b = gb.mul(g, a)?;
                let ga = self.unbroadcast(gb, gb_a, inputs[0])?;
                let gbr = self.unbroadcast(gb, gb_b, inputs[1])?;
                Ok(vec![Some(ga), Some(gbr)])
            }
            Div => {
                let Some(g) = g0 else { return none(n_in) };
                let a = self.resolve(gb, inputs[0])?;
                let b = self.resolve(gb, inputs[1])?;
                let ga_raw = gb.div(g, b)?;
                let ga = self.unbroadcast(gb, ga_raw, inputs[0])?;
                // d/db (a/b) = -a / b^2.
                let b2 = gb.square(b)?;
                let ab2 = gb.div(a, b2)?;
                let gb_raw = gb.mul(g, ab2)?;
                let gneg = gb.neg(gb_raw)?;
                let gbr = self.unbroadcast(gb, gneg, inputs[1])?;
                Ok(vec![Some(ga), Some(gbr)])
            }
            Maximum | Minimum => {
                let Some(g) = g0 else { return none(n_in) };
                let a = self.resolve(gb, inputs[0])?;
                let b = self.resolve(gb, inputs[1])?;
                let a_wins = if matches!(op, Maximum) {
                    gb.greater_equal(a, b)?
                } else {
                    gb.less_equal(a, b)?
                };
                let zero = gb.zeros_like(g)?;
                let ga_raw = gb.select(a_wins, g, zero)?;
                let gb_raw = gb.select(a_wins, zero, g)?;
                let ga = self.unbroadcast(gb, ga_raw, inputs[0])?;
                let gbr = self.unbroadcast(gb, gb_raw, inputs[1])?;
                Ok(vec![Some(ga), Some(gbr)])
            }
            Neg => Ok(vec![g0.map(|g| gb.neg(g)).transpose()?]),
            Exp => {
                let Some(g) = g0 else { return none(n_in) };
                let y = self.resolve(gb, out(nid, 0))?;
                Ok(vec![Some(gb.mul(g, y)?)])
            }
            Log => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                Ok(vec![Some(gb.div(g, x)?)])
            }
            Sqrt => {
                let Some(g) = g0 else { return none(n_in) };
                let y = self.resolve(gb, out(nid, 0))?;
                let half = gb.scalar_f32(0.5);
                let gy = gb.div(g, y)?;
                Ok(vec![Some(gb.mul(gy, half)?)])
            }
            Square => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                let two = gb.scalar_f32(2.0);
                let gx = gb.mul(g, x)?;
                Ok(vec![Some(gb.mul(gx, two)?)])
            }
            Abs => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                let zero = gb.zeros_like(x)?;
                let pos = gb.greater_equal(x, zero)?;
                let ng = gb.neg(g)?;
                Ok(vec![Some(gb.select(pos, g, ng)?)])
            }
            Sigmoid => {
                let Some(g) = g0 else { return none(n_in) };
                let y = self.resolve(gb, out(nid, 0))?;
                let one = gb.scalar_f32(1.0);
                let om = gb.sub(one, y)?;
                let yy = gb.mul(y, om)?;
                Ok(vec![Some(gb.mul(g, yy)?)])
            }
            Tanh => {
                let Some(g) = g0 else { return none(n_in) };
                let y = self.resolve(gb, out(nid, 0))?;
                let one = gb.scalar_f32(1.0);
                let y2 = gb.square(y)?;
                let om = gb.sub(one, y2)?;
                Ok(vec![Some(gb.mul(g, om)?)])
            }
            Relu => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                let zero = gb.zeros_like(x)?;
                let pos = gb.greater(x, zero)?;
                let zg = gb.zeros_like(g)?;
                Ok(vec![Some(gb.select(pos, g, zg)?)])
            }
            Softmax => {
                let Some(g) = g0 else { return none(n_in) };
                let y = self.resolve(gb, out(nid, 0))?;
                // dx = (g - sum(g*y, -1, keep)) * y.
                let gy = gb.mul(g, y)?;
                let s = gb.reduce_sum_axis(gy, -1, true)?;
                let centered = gb.sub(g, s)?;
                Ok(vec![Some(gb.mul(centered, y)?)])
            }
            MatMul { transpose_a, transpose_b } => {
                let Some(g) = g0 else { return none(n_in) };
                let a = self.resolve(gb, inputs[0])?;
                let b = self.resolve(gb, inputs[1])?;
                let (ga, gbr) = match (transpose_a, transpose_b) {
                    (false, false) => {
                        (gb.matmul_t(g, b, false, true)?, gb.matmul_t(a, g, true, false)?)
                    }
                    (true, false) => {
                        (gb.matmul_t(b, g, false, true)?, gb.matmul_t(a, g, false, false)?)
                    }
                    (false, true) => {
                        (gb.matmul_t(g, b, false, false)?, gb.matmul_t(g, a, true, false)?)
                    }
                    (true, true) => {
                        (gb.matmul_t(b, g, true, true)?, gb.matmul_t(g, a, true, true)?)
                    }
                };
                Ok(vec![Some(ga), Some(gbr)])
            }
            Transpose => Ok(vec![g0.map(|g| gb.transpose(g)).transpose()?]),
            ReduceSumAll => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                Ok(vec![Some(gb.broadcast_like(g, x)?)])
            }
            ReduceMeanAll => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                let b = gb.broadcast_like(g, x)?;
                let n = gb.size_f32(x)?;
                Ok(vec![Some(gb.div(b, n)?)])
            }
            ReduceSumAxis { axis, keep_dims } => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                let g = self.restore_axis(gb, g, x, *axis, *keep_dims)?;
                Ok(vec![Some(gb.broadcast_like(g, x)?)])
            }
            ReduceMeanAxis { axis, keep_dims } => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                let g = self.restore_axis(gb, g, x, *axis, *keep_dims)?;
                let b = gb.broadcast_like(g, x)?;
                let rank = gb.graph().shape(inputs[0]).map(|s| s.rank());
                let ax = resolve_axis(*axis, rank)?;
                let extent = gb.dim_size_f32(x, ax)?;
                Ok(vec![Some(gb.div(b, extent)?)])
            }
            ReduceMaxAll | ReduceMaxAxis { .. } => Err(GraphError::Invalid(
                "gradient of max-reduction is not implemented (use it only on stop-gradient paths)"
                    .into(),
            )),
            Reshape { .. } | ReshapeLike => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                let mut grads = vec![Some(gb.reshape_like(g, x)?)];
                grads.resize(n_in, None);
                Ok(grads)
            }
            BroadcastTo { .. } | BroadcastLike => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                let mut grads = vec![Some(gb.reduce_to_like(g, x)?)];
                grads.resize(n_in, None);
                Ok(grads)
            }
            ExpandDims { .. } => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                Ok(vec![Some(gb.reshape_like(g, x)?)])
            }
            ReduceToLike => {
                let Some(g) = g0 else { return none(n_in) };
                let x = self.resolve(gb, inputs[0])?;
                Ok(vec![Some(gb.broadcast_like(g, x)?), None])
            }
            Cast { dtype } => {
                // Only f32 -> f32 casts (identity) carry gradient.
                if *dtype == dcf_tensor::DType::F32
                    && gb.graph().dtype(inputs[0]) == dcf_tensor::DType::F32
                {
                    Ok(vec![g0])
                } else {
                    none(n_in)
                }
            }
            ZerosLike | OnesLike => none(n_in),
            Select => {
                let Some(g) = g0 else { return none(n_in) };
                let c = self.resolve(gb, inputs[0])?;
                let zero = gb.zeros_like(g)?;
                let ga = gb.select(c, g, zero)?;
                let gbr = gb.select(c, zero, g)?;
                Ok(vec![None, Some(ga), Some(gbr)])
            }
            Concat0 => {
                let Some(g) = g0 else { return none(n_in) };
                let likes: Vec<TensorRef> =
                    inputs.iter().map(|i| self.resolve(gb, *i)).collect::<Result<_>>()?;
                let mut grads = Vec::with_capacity(n_in);
                for i in 0..n_in {
                    grads.push(Some(gb.concat0_grad(g, &likes, i)?));
                }
                Ok(grads)
            }
            Concat1 => {
                let Some(g) = g0 else { return none(n_in) };
                let likes: Vec<TensorRef> =
                    inputs.iter().map(|i| self.resolve(gb, *i)).collect::<Result<_>>()?;
                let mut grads = Vec::with_capacity(n_in);
                for i in 0..n_in {
                    grads.push(Some(gb.concat1_grad(g, &likes, i)?));
                }
                Ok(grads)
            }
            Split1 { n } => {
                // Gradient is the column concatenation of the part
                // gradients (zeros for missing parts).
                let mut parts = Vec::with_capacity(*n);
                let any = out_grads.iter().any(|g| g.is_some());
                if !any {
                    return none(n_in);
                }
                for port in 0..*n {
                    match out_grads.get(port).copied().flatten() {
                        Some(g) => parts.push(g),
                        None => {
                            let some = out_grads
                                .iter()
                                .flatten()
                                .next()
                                .copied()
                                .expect("at least one gradient");
                            parts.push(gb.zeros_like(some)?);
                        }
                    }
                }
                Ok(vec![Some(gb.concat1(&parts)?)])
            }
            Pack => {
                let Some(g) = g0 else { return none(n_in) };
                let mut grads = Vec::with_capacity(n_in);
                for i in 0..n_in {
                    let ic = gb.scalar_i64(i as i64);
                    grads.push(Some(gb.index0(g, ic)?));
                }
                Ok(grads)
            }
            Index0 => {
                let Some(g) = g0 else { return none(n_in) };
                let like = self.resolve(gb, inputs[0])?;
                let idx = self.resolve(gb, inputs[1])?;
                Ok(vec![Some(gb.index0_grad(g, like, idx)?), None])
            }
            Gather0 => {
                let Some(g) = g0 else { return none(n_in) };
                let like = self.resolve(gb, inputs[0])?;
                let idx = self.resolve(gb, inputs[1])?;
                // Scatter-add needs the static row count; read it from the
                // like tensor's static shape if available.
                let rows =
                    gb.graph().shape(inputs[0]).map(|s: &Shape| s.dim(0)).ok_or_else(|| {
                        GraphError::Invalid(
                            "Gather0 gradient requires a statically shaped table".into(),
                        )
                    })?;
                let _ = like;
                Ok(vec![Some(gb.scatter_add0(rows, idx, g)?), None])
            }
            ScatterAdd0 { .. } => {
                let Some(g) = g0 else { return none(n_in) };
                let idx = self.resolve(gb, inputs[0])?;
                Ok(vec![None, Some(gb.gather0(g, idx)?)])
            }

            // ---------------- TensorArrays (§5.2) ----------------
            TensorArrayWrite => self.ta_write_grad(gb, nid, &inputs),
            TensorArrayRead => self.ta_read_grad(gb, nid, &inputs, g0),
            TensorArrayPack => self.ta_pack_grad(gb, &inputs, g0),
            TensorArrayUnpack => self.ta_unpack_grad(gb, &inputs),

            // ---------------- In-graph functions ----------------
            Call { function, results } => {
                self.call_grad(gb, nid, function, results, &inputs, out_grads)
            }
            // Parameters are gradient sinks (the Call rule maps gradients
            // onto call arguments); rets never accumulate partials.
            FunctionParam { .. } | FunctionRet { .. } => none(n_in),

            other => Err(GraphError::Invalid(format!("no gradient rule for op {}", other.name()))),
        }
    }

    /// Adapts the gradient of a broadcasting binary op to one operand:
    /// statically when both shapes are known, otherwise via the runtime
    /// `ReduceToLike` adapter (which needs the operand's saved value).
    fn unbroadcast(
        &mut self,
        gb: &mut GraphBuilder,
        g: TensorRef,
        operand: TensorRef,
    ) -> Result<TensorRef> {
        let g_shape = gb.graph().shape(g).cloned();
        let o_shape = gb.graph().shape(operand).cloned();
        match (g_shape, o_shape) {
            (Some(gs), Some(os)) if gs == os => Ok(g),
            (Some(gs), Some(os)) => {
                // Static un-broadcast: sum the axes broadcasting added.
                let mut cur = g;
                let mut cur_shape = gs;
                while cur_shape.rank() > os.rank() {
                    cur = gb.reduce_sum_axis(cur, 0, false)?;
                    cur_shape = Shape::new(cur_shape.dims()[1..].to_vec());
                }
                for axis in 0..os.rank() {
                    if os.dim(axis) == 1 && cur_shape.dim(axis) != 1 {
                        cur = gb.reduce_sum_axis(cur, axis as i64, true)?;
                        let mut dims = cur_shape.dims().to_vec();
                        dims[axis] = 1;
                        cur_shape = Shape::new(dims);
                    }
                }
                Ok(cur)
            }
            _ => {
                let like = self.resolve(gb, operand)?;
                gb.reduce_to_like(g, like)
            }
        }
    }

    /// Re-inserts a reduced axis (as extent 1) into an axis-reduction
    /// gradient when the forward op used `keep_dims = false`.
    fn restore_axis(
        &mut self,
        gb: &mut GraphBuilder,
        g: TensorRef,
        _x: TensorRef,
        axis: i64,
        keep_dims: bool,
    ) -> Result<TensorRef> {
        if keep_dims {
            return Ok(g);
        }
        let rank = gb.graph().shape(g).map(|s| s.rank());
        let ax = resolve_axis(axis, rank.map(|r| r + 1))?;
        gb.expand_dims(g, ax)
    }

    // ---------------- cond gradients ----------------

    /// Gradient of a conditional `Merge`: route the gradient back to the
    /// branch that produced the value, via one `Switch` per branch on the
    /// original predicate.
    fn merge_grad(
        &mut self,
        gb: &mut GraphBuilder,
        nid: NodeId,
        inputs: &[TensorRef],
        g0: Option<TensorRef>,
    ) -> Result<Vec<Option<TensorRef>>> {
        let Some(g) = g0 else {
            return Ok(vec![None; inputs.len()]);
        };
        // A loop merge reaching here is a bug: loop machinery is handled by
        // the supernode.
        let mut grads = Vec::with_capacity(inputs.len());
        for &inp in inputs {
            let branch_ctx = gb.graph().node(inp.node).ctx;
            let info = match &gb.graph().context(branch_ctx).kind {
                ContextKind::Cond(c) => (c.pred, c.branch),
                _ => {
                    return Err(GraphError::Invalid(format!(
                        "merge {} input is not from a conditional branch",
                        gb.graph().node(nid).name
                    )))
                }
            };
            let (pred, branch) = info;
            let rp = self.resolve(gb, pred)?;
            // At the root region the grad switch belongs to the branch
            // context so its output is a branch-level value; inside a
            // gradient loop it is an ordinary gradient-body op (inputs from
            // outer scopes must be captured so tokens share a frame).
            let sw = if self.levels.is_empty() {
                gb.add_boundary_op(OpKind::Switch, &[g, rp], branch_ctx)?
            } else {
                gb.add_op(OpKind::Switch, &[g, rp])?
            };
            grads.push(Some(TensorRef { node: sw, port: branch.port() }));
        }
        Ok(grads)
    }

    /// Gradient of a guard `Switch`: merge the branch gradients, filling
    /// a branch-guarded zero for a branch that produced no gradient.
    fn switch_grad(
        &mut self,
        gb: &mut GraphBuilder,
        nid: NodeId,
        inputs: &[TensorRef],
        out_grads: &[Option<TensorRef>],
    ) -> Result<Vec<Option<TensorRef>>> {
        let node_ctx = gb.graph().node(nid).ctx;
        let is_guard = matches!(gb.graph().context(node_ctx).kind, ContextKind::Cond(_));
        if !is_guard && self.levels.is_empty() {
            return Err(GraphError::Invalid(format!(
                "gradient reached a non-guard Switch {}",
                gb.graph().node(nid).name
            )));
        }
        let g_false = out_grads.first().copied().flatten();
        let g_true = out_grads.get(1).copied().flatten();
        if g_false.is_none() && g_true.is_none() {
            return Ok(vec![None; inputs.len()]);
        }
        let pred = inputs[1];
        let rp = self.resolve(gb, pred)?;
        // Fill in the missing branch with zeros guarded to that branch so
        // the merge always receives exactly one live token.
        let data = inputs[0];
        let at_root = self.levels.is_empty();
        let mk_zero = |gb: &mut GraphBuilder, eng: &mut Engine, port: usize| -> Result<TensorRef> {
            let d = eng.resolve(gb, data)?;
            let sw = if at_root {
                gb.add_boundary_op(OpKind::Switch, &[d, rp], node_ctx)?
            } else {
                gb.add_op(OpKind::Switch, &[d, rp])?
            };
            let z_in = TensorRef { node: sw, port };
            if at_root {
                let z = gb.add_boundary_op(OpKind::ZerosLike, &[z_in], node_ctx)?;
                Ok(TensorRef { node: z, port: 0 })
            } else {
                gb.zeros_like(z_in)
            }
        };
        let gf = match g_false {
            Some(g) => g,
            None => mk_zero(gb, self, 0)?,
        };
        let gt = match g_true {
            Some(g) => g,
            None => mk_zero(gb, self, 1)?,
        };
        // The merge lives at the switch's parent level: its output is the
        // gradient of the pre-guard value.
        let m = if at_root {
            gb.add_boundary_op(OpKind::Merge, &[gt, gf], gb.graph().node(data.node).ctx)?
        } else {
            gb.add_op(OpKind::Merge, &[gt, gf])?
        };
        Ok(vec![Some(TensorRef { node: m, port: 0 }), None])
    }

    // ---------------- TensorArray gradients ----------------

    fn ta_write_grad(
        &mut self,
        gb: &mut GraphBuilder,
        _nid: NodeId,
        inputs: &[TensorRef],
    ) -> Result<Vec<Option<TensorRef>>> {
        let h = Self::resolve_source(gb, inputs[0]);
        if !self.ta_grads.contains_key(&h) {
            return Ok(vec![None; inputs.len()]);
        }
        // grad(value) = grad_array.read(index) (§5.2 duality).
        let view = self.ta_grad_view(gb, h)?;
        let idx = self.resolve(gb, inputs[1])?;
        let g_value = view.read(gb, idx)?;
        Ok(vec![None, None, Some(g_value), None])
    }

    fn ta_read_grad(
        &mut self,
        gb: &mut GraphBuilder,
        _nid: NodeId,
        inputs: &[TensorRef],
        g0: Option<TensorRef>,
    ) -> Result<Vec<Option<TensorRef>>> {
        let Some(g) = g0 else {
            return Ok(vec![None; inputs.len()]);
        };
        let h = Self::resolve_source(gb, inputs[0]);
        // Reads from an array that only ever holds a constant (e.g. the
        // unstacked input sequence) need no gradient array: the gradient
        // would be discarded at the constant.
        if Self::array_is_const_fed(gb, h) {
            return Ok(vec![None; inputs.len()]);
        }
        self.ensure_ta_grad(gb, h)?;
        // grad of read = accumulate-write into the gradient array; multiple
        // reads of one location sum their gradients (§5.2).
        let view = self.ta_grad_view(gb, h)?;
        let idx = self.resolve(gb, inputs[1])?;
        let new = view.write(gb, idx, g)?;
        self.update_ta_flow(h, new.flow);
        Ok(vec![None; inputs.len()])
    }

    fn ta_pack_grad(
        &mut self,
        gb: &mut GraphBuilder,
        inputs: &[TensorRef],
        g0: Option<TensorRef>,
    ) -> Result<Vec<Option<TensorRef>>> {
        let Some(g) = g0 else {
            return Ok(vec![None; inputs.len()]);
        };
        let h = Self::resolve_source(gb, inputs[0]);
        self.ensure_ta_grad(gb, h)?;
        // grad of pack = unstack the gradient into the gradient array.
        let view = self.ta_grad_view(gb, h)?;
        let new = view.unstack(gb, g)?;
        self.update_ta_flow(h, new.flow);
        Ok(vec![None; inputs.len()])
    }

    fn ta_unpack_grad(
        &mut self,
        gb: &mut GraphBuilder,
        inputs: &[TensorRef],
    ) -> Result<Vec<Option<TensorRef>>> {
        let h = Self::resolve_source(gb, inputs[0]);
        if !self.ta_grads.contains_key(&h) {
            return Ok(vec![None; inputs.len()]);
        }
        // The unstacked value's gradient is discarded when the value is a
        // constant (e.g. a fixed input sequence): skip building the pack.
        let src = Self::resolve_source(gb, inputs[1]);
        if matches!(gb.graph().node(src.node).op, OpKind::Const(_)) {
            return Ok(vec![None; inputs.len()]);
        }
        // grad of unstack(value) = pack of the gradient array, ordered
        // after every gradient write via the threaded flow.
        let view = self.ta_grad_view(gb, h)?;
        let g_value = view.pack(gb)?;
        Ok(vec![None, Some(g_value), None])
    }
}

impl Engine {
    /// `true` when every value entering the array traces to a constant:
    /// one constant-sourced unpack and no writes.
    fn array_is_const_fed(gb: &GraphBuilder, h: TensorRef) -> bool {
        let mut const_unpack = false;
        for node in gb.graph().nodes() {
            match node.op {
                OpKind::TensorArrayUnpack if Self::resolve_source(gb, node.inputs[0]) == h => {
                    let src = Self::resolve_source(gb, node.inputs[1]);
                    if matches!(gb.graph().node(src.node).op, OpKind::Const(_)) {
                        const_unpack = true;
                    } else {
                        return false;
                    }
                }
                OpKind::TensorArrayWrite if Self::resolve_source(gb, node.inputs[0]) == h => {
                    return false;
                }
                _ => {}
            }
        }
        const_unpack
    }
}

fn out(nid: NodeId, port: usize) -> TensorRef {
    TensorRef { node: nid, port }
}

fn resolve_axis(axis: i64, rank: Option<usize>) -> Result<usize> {
    if axis >= 0 {
        return Ok(axis as usize);
    }
    match rank {
        Some(r) => Ok((axis + r as i64).max(0) as usize),
        None => Err(GraphError::Invalid(
            "negative reduction axis requires a statically known rank".into(),
        )),
    }
}
