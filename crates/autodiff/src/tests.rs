//! Gradient correctness tests: every rule and construct is validated
//! against central-difference numerical gradients computed by re-executing
//! the forward graph.

use crate::gradients;
use dcf_device::{Device, DeviceId, DeviceProfile, Tracer};
use dcf_exec::{ExecGraph, Executor, ExecutorOptions, InMemoryRendezvous, ResourceManager};
use dcf_graph::{GraphBuilder, TensorRef, WhileOptions};
use dcf_tensor::{DType, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

fn run_graph(
    b: GraphBuilder,
    feeds: &HashMap<String, Tensor>,
    fetches: &[TensorRef],
) -> Vec<Tensor> {
    let graph = Arc::new(b.finish().expect("graph should validate"));
    let eg = ExecGraph::local(graph);
    let device = Device::new(DeviceId(0), 0, DeviceProfile::cpu(), Tracer::new());
    let exec = Executor::new(
        eg,
        device,
        ResourceManager::new(),
        Arc::new(InMemoryRendezvous::new()),
        ExecutorOptions::default(),
    );
    exec.run(feeds, fetches).expect("run should succeed").values
}

/// Checks the symbolic gradient of `build` (mapping a fed placeholder to a
/// scalar loss) against central differences at `x0`.
fn check_grad(build: impl Fn(&mut GraphBuilder, TensorRef) -> TensorRef, x0: Tensor, tol: f32) {
    // Analytic gradient.
    let analytic = {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x", DType::F32);
        let y = build(&mut b, x);
        let grads = gradients(&mut b, y, &[x]).expect("gradient construction");
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), x0.clone());
        run_graph(b, &feeds, &[grads[0]]).remove(0)
    };
    assert_eq!(analytic.shape(), x0.shape(), "gradient shape mismatch");

    // Numerical gradient.
    let eval = |xv: &Tensor| -> f32 {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x", DType::F32);
        let y = build(&mut b, x);
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), xv.clone());
        run_graph(b, &feeds, &[y]).remove(0).scalar_as_f32().unwrap()
    };
    let base = x0.as_f32_slice().unwrap().to_vec();
    let eps = 1e-2f32;
    let a = analytic.as_f32_slice().unwrap();
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += eps;
        let mut minus = base.clone();
        minus[i] -= eps;
        let yp = eval(&Tensor::from_vec_f32(plus, x0.shape().dims()).unwrap());
        let ym = eval(&Tensor::from_vec_f32(minus, x0.shape().dims()).unwrap());
        let numeric = (yp - ym) / (2.0 * eps);
        assert!(
            (a[i] - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "grad[{i}]: analytic {} vs numeric {}",
            a[i],
            numeric
        );
    }
}

fn vec_t(v: Vec<f32>, d: &[usize]) -> Tensor {
    Tensor::from_vec_f32(v, d).unwrap()
}

#[test]
fn square_gradient() {
    check_grad(
        |b, x| {
            let y = b.square(x).unwrap();
            b.reduce_sum(y).unwrap()
        },
        vec_t(vec![1.5, -2.0, 0.5], &[3]),
        1e-2,
    );
}

#[test]
fn elementwise_chain_gradient() {
    check_grad(
        |b, x| {
            let s = b.sigmoid(x).unwrap();
            let t = b.tanh(s).unwrap();
            let e = b.exp(t).unwrap();
            b.reduce_sum(e).unwrap()
        },
        vec_t(vec![0.3, -0.7, 1.1, 0.0], &[4]),
        1e-2,
    );
}

#[test]
fn mul_div_sub_gradient() {
    check_grad(
        |b, x| {
            let c = b.constant(vec_t(vec![2.0, -3.0, 0.5], &[3]));
            let m = b.mul(x, c).unwrap();
            let d = b.div(m, x).unwrap(); // = c, but exercises div rule
            let s = b.sub(m, d).unwrap();
            b.reduce_sum(s).unwrap()
        },
        vec_t(vec![1.5, 2.5, -1.0], &[3]),
        2e-2,
    );
}

#[test]
fn broadcast_bias_gradient_static() {
    // [2,3] + [3] bias: the bias gradient must sum over rows (static path).
    check_grad(
        |b, x| {
            let m = b.constant(vec_t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
            let y = b.add(m, x).unwrap();
            let sq = b.square(y).unwrap();
            b.reduce_sum(sq).unwrap()
        },
        vec_t(vec![0.5, -0.5, 1.0], &[3]),
        1e-2,
    );
}

#[test]
fn matmul_gradients_all_transpose_combinations() {
    // x is always [2, 3]; pick the constant operand so every transpose
    // combination is shape-valid.
    for (ta, tb) in [(false, false), (true, false), (false, true), (true, true)] {
        check_grad(
            |b, x| {
                let w23 = b.constant(vec_t(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]));
                let w32 = b.constant(vec_t(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[3, 2]));
                let y = match (ta, tb) {
                    (false, false) => b.matmul_t(x, w32, false, false).unwrap(), // [2,2]
                    (false, true) => b.matmul_t(x, w23, false, true).unwrap(),   // [2,2]
                    (true, false) => b.matmul_t(x, w23, true, false).unwrap(),   // [3,3]
                    (true, true) => b.matmul_t(x, w32, true, true).unwrap(),     // [3,3]
                };
                let sq = b.square(y).unwrap();
                b.reduce_sum(sq).unwrap()
            },
            vec_t(vec![1.0, -0.5, 0.3, 0.7, 2.0, -1.2], &[2, 3]),
            2e-2,
        );
    }
}

#[test]
fn reduce_mean_and_axis_gradients() {
    check_grad(
        |b, x| {
            let m = b.reduce_mean_axis(x, 1, true).unwrap();
            let s = b.reduce_sum_axis(x, 0, false).unwrap();
            let ms = b.reduce_sum(m).unwrap();
            let ss = b.reduce_mean(s).unwrap();
            b.add(ms, ss).unwrap()
        },
        vec_t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
        1e-2,
    );
}

#[test]
fn select_relu_abs_maximum_gradients() {
    check_grad(
        |b, x| {
            let r = b.relu(x).unwrap();
            let a = b.abs(x).unwrap();
            let c = b.constant(vec_t(vec![0.5, 0.5, 0.5], &[3]));
            let m = b.maximum(x, c).unwrap();
            let s1 = b.add(r, a).unwrap();
            let s2 = b.add(s1, m).unwrap();
            b.reduce_sum(s2).unwrap()
        },
        // Stay away from the kinks at 0 and 0.5.
        vec_t(vec![1.5, -2.0, 0.2], &[3]),
        1e-2,
    );
}

#[test]
fn concat_split_pack_index_gradients() {
    check_grad(
        |b, x| {
            let c = b.constant(vec_t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
            let cat = b.concat1(&[x, c]).unwrap(); // [2, 4]
            let parts = b.split1(cat, 2).unwrap();
            let p = b.mul(parts[0], parts[1]).unwrap();
            let packed = b.pack(&[p, p]).unwrap();
            let i1 = b.scalar_i64(1);
            let row = b.index0(packed, i1).unwrap();
            b.reduce_sum(row).unwrap()
        },
        vec_t(vec![0.5, 1.5, -0.5, 2.0], &[2, 2]),
        2e-2,
    );
}

#[test]
fn softmax_gradient() {
    check_grad(
        |b, x| {
            let s = b.softmax(x).unwrap();
            let w = b.constant(vec_t(vec![1.0, 2.0, 3.0], &[3]));
            let p = b.mul(s, w).unwrap();
            b.reduce_sum(p).unwrap()
        },
        vec_t(vec![0.1, 0.5, -0.3], &[3]),
        1e-2,
    );
}

#[test]
fn cond_gradient_both_branches() {
    for pv in [true, false] {
        let analytic = {
            let mut b = GraphBuilder::new();
            let x = b.placeholder("x", DType::F32);
            let p = b.constant(Tensor::scalar_bool(pv));
            let outs = b
                .cond(
                    p,
                    |g| Ok(vec![g.square(x)?]),
                    |g| {
                        let three = g.scalar_f32(3.0);
                        Ok(vec![g.mul(x, three)?])
                    },
                )
                .unwrap();
            let y = b.reduce_sum(outs[0]).unwrap();
            let grads = gradients(&mut b, y, &[x]).unwrap();
            let mut feeds = HashMap::new();
            feeds.insert("x".to_string(), Tensor::scalar_f32(5.0));
            run_graph(b, &feeds, &[grads[0]]).remove(0)
        };
        let expect = if pv { 10.0 } else { 3.0 };
        assert_eq!(analytic.scalar_as_f32().unwrap(), expect, "pred={pv}");
    }
}

#[test]
fn while_loop_power_gradient() {
    // a = 1; repeat 3: a = a * x; y = a = x^3; dy/dx = 3 x^2.
    check_grad(
        |b, x| {
            let i0 = b.scalar_i64(0);
            let a0 = b.scalar_f32(1.0);
            let lim = b.scalar_i64(3);
            let outs = b
                .while_loop(
                    &[i0, a0],
                    |g, v| g.less(v[0], lim),
                    |g, v| {
                        let one = g.scalar_i64(1);
                        let i = g.add(v[0], one)?;
                        let a = g.mul(v[1], x)?;
                        Ok(vec![i, a])
                    },
                    WhileOptions::default(),
                )
                .unwrap();
            outs[1]
        },
        Tensor::scalar_f32(1.7),
        1e-2,
    );
}

#[test]
fn while_loop_matmul_gradient_matches_paper_example() {
    // The §5.1 example: a = x; repeat 3: a = matmul(a, w); y = sum(a).
    // Check gradient with respect to the loop-invariant w.
    check_grad(
        |b, w| {
            let x = b.constant(vec_t(vec![1.0, 0.5, -0.5, 2.0], &[2, 2]));
            let i0 = b.scalar_i64(0);
            let lim = b.scalar_i64(3);
            let outs = b
                .while_loop(
                    &[i0, x],
                    |g, v| g.less(v[0], lim),
                    |g, v| {
                        let one = g.scalar_i64(1);
                        let i = g.add(v[0], one)?;
                        let a = g.matmul(v[1], w)?;
                        Ok(vec![i, a])
                    },
                    WhileOptions::default(),
                )
                .unwrap();
            b.reduce_sum(outs[1]).unwrap()
        },
        vec_t(vec![0.4, -0.1, 0.2, 0.3], &[2, 2]),
        2e-2,
    );
}

#[test]
fn while_gradient_matches_static_unrolling() {
    // The same computation unrolled statically must produce identical
    // gradients (the paper's Figure 8 equivalence).
    let w0 = vec_t(vec![0.4, -0.1, 0.2, 0.3], &[2, 2]);
    let x0 = vec_t(vec![1.0, 0.5, -0.5, 2.0], &[2, 2]);
    let looped = {
        let mut b = GraphBuilder::new();
        let w = b.placeholder("w", DType::F32);
        let x = b.constant(x0.clone());
        let i0 = b.scalar_i64(0);
        let lim = b.scalar_i64(3);
        let outs = b
            .while_loop(
                &[i0, x],
                |g, v| g.less(v[0], lim),
                |g, v| {
                    let one = g.scalar_i64(1);
                    Ok(vec![g.add(v[0], one)?, g.matmul(v[1], w)?])
                },
                WhileOptions::default(),
            )
            .unwrap();
        let y = b.reduce_sum(outs[1]).unwrap();
        let grads = gradients(&mut b, y, &[w]).unwrap();
        let mut feeds = HashMap::new();
        feeds.insert("w".to_string(), w0.clone());
        run_graph(b, &feeds, &[grads[0]]).remove(0)
    };
    let unrolled = {
        let mut b = GraphBuilder::new();
        let w = b.placeholder("w", DType::F32);
        let x = b.constant(x0);
        let a1 = b.matmul(x, w).unwrap();
        let a2 = b.matmul(a1, w).unwrap();
        let a3 = b.matmul(a2, w).unwrap();
        let y = b.reduce_sum(a3).unwrap();
        let grads = gradients(&mut b, y, &[w]).unwrap();
        let mut feeds = HashMap::new();
        feeds.insert("w".to_string(), w0);
        run_graph(b, &feeds, &[grads[0]]).remove(0)
    };
    assert!(looped.allclose(&unrolled, 1e-4), "loop grad {looped} != unrolled grad {unrolled}");
}

#[test]
fn data_dependent_trip_count_gradient() {
    // Loop until a > 10: iteration count depends on x.
    check_grad(
        |b, x| {
            let a0 = b.identity(x).unwrap();
            let lim = b.scalar_f32(10.0);
            let two = b.scalar_f32(2.0);
            let outs = b
                .while_loop(
                    &[a0],
                    |g, v| g.less(v[0], lim),
                    |g, v| Ok(vec![g.mul(v[0], two)?]),
                    WhileOptions::default(),
                )
                .unwrap();
            outs[0]
        },
        Tensor::scalar_f32(0.9), // 0.9 -> 1.8 -> 3.6 -> 7.2 -> 14.4 (4 iters)
        1e-2,
    );
}

#[test]
fn nested_loop_gradient() {
    // y = x^(2*3) via nested multiply loops.
    check_grad(
        |b, x| {
            let i0 = b.scalar_i64(0);
            let a0 = b.scalar_f32(1.0);
            let outer_lim = b.scalar_i64(2);
            let inner_lim = b.scalar_i64(3);
            let outs = b
                .while_loop(
                    &[i0, a0],
                    |g, v| g.less(v[0], outer_lim),
                    |g, v| {
                        let j0 = g.scalar_i64(0);
                        let inner = g.while_loop(
                            &[j0, v[1]],
                            |g, w| g.less(w[0], inner_lim),
                            |g, w| {
                                let one = g.scalar_i64(1);
                                Ok(vec![g.add(w[0], one)?, g.mul(w[1], x)?])
                            },
                            WhileOptions::default(),
                        )?;
                        let one = g.scalar_i64(1);
                        Ok(vec![g.add(v[0], one)?, inner[1]])
                    },
                    WhileOptions::default(),
                )
                .unwrap();
            outs[1] // x^6
        },
        Tensor::scalar_f32(1.2),
        3e-2,
    );
}

#[test]
fn cond_inside_while_gradient() {
    // Alternating: a = (i even) ? a*x : a+x, 4 iterations.
    check_grad(
        |b, x| {
            let i0 = b.scalar_i64(0);
            let a0 = b.scalar_f32(1.0);
            let lim = b.scalar_i64(4);
            let outs = b
                .while_loop(
                    &[i0, a0],
                    |g, v| g.less(v[0], lim),
                    |g, v| {
                        let half = g.scalar_f32(0.5);
                        let fi = g.cast(v[0], DType::F32)?;
                        let h = g.mul(fi, half)?;
                        let t = g.cast(h, DType::I64)?;
                        let back = g.cast(t, DType::F32)?;
                        let even = g.equal(h, back)?;
                        let a = g.cond(
                            even,
                            |g| Ok(vec![g.mul(v[1], x)?]),
                            |g| Ok(vec![g.add(v[1], x)?]),
                        )?;
                        let one = g.scalar_i64(1);
                        Ok(vec![g.add(v[0], one)?, a[0]])
                    },
                    WhileOptions::default(),
                )
                .unwrap();
            outs[1]
        },
        Tensor::scalar_f32(1.3),
        2e-2,
    );
}

#[test]
fn scan_gradient_through_tensor_arrays() {
    // y = sum(scan(mul, elems=x, init=1)) — running products; the gradient
    // exercises TensorArray read/write duals inside the loop and
    // pack/unpack outside.
    check_grad(
        |b, x| {
            let init = b.scalar_f32(1.0);
            let r = b.scan(|g, a, e| g.mul(a, e), x, init, WhileOptions::default()).unwrap();
            b.reduce_sum(r).unwrap()
        },
        vec_t(vec![1.1, 0.9, 1.3], &[3]),
        2e-2,
    );
}

#[test]
fn map_fn_gradient() {
    check_grad(
        |b, x| {
            let m = b.map_fn(|g, e| g.square(e), x, DType::F32, WhileOptions::default()).unwrap();
            b.reduce_sum(m).unwrap()
        },
        vec_t(vec![1.0, -2.0, 0.5, 3.0], &[4]),
        1e-2,
    );
}

#[test]
fn foldl_gradient() {
    check_grad(
        |b, x| {
            let init = b.scalar_f32(0.5);
            b.foldl(|g, a, e| g.mul(a, e), x, init, WhileOptions::default()).unwrap()
        },
        vec_t(vec![1.2, 0.8, 1.1], &[3]),
        2e-2,
    );
}

#[test]
fn unused_input_gets_zero_gradient() {
    let mut b = GraphBuilder::new();
    let x = b.variable("x", Tensor::scalar_f32(1.0));
    let z = b.variable("z", vec_t(vec![1.0, 2.0], &[2]));
    let y = b.square(x).unwrap();
    let grads = gradients(&mut b, y, &[x, z]).unwrap();
    let out = run_graph(b, &HashMap::new(), &grads);
    assert_eq!(out[0].scalar_as_f32().unwrap(), 2.0);
    assert_eq!(out[1].as_f32_slice().unwrap(), &[0.0, 0.0]);
}

#[test]
fn gradient_with_parallel_iterations_one_matches() {
    // The §4.3 knob must not change gradient values.
    let grad_with = |p: usize| {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x", DType::F32);
        let i0 = b.scalar_i64(0);
        let a0 = b.scalar_f32(1.0);
        let lim = b.scalar_i64(5);
        let outs = b
            .while_loop(
                &[i0, a0],
                |g, v| g.less(v[0], lim),
                |g, v| {
                    let one = g.scalar_i64(1);
                    Ok(vec![g.add(v[0], one)?, g.mul(v[1], x)?])
                },
                WhileOptions { parallel_iterations: p, ..Default::default() },
            )
            .unwrap();
        let grads = gradients(&mut b, outs[1], &[x]).unwrap();
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), Tensor::scalar_f32(1.1));
        run_graph(b, &feeds, &[grads[0]]).remove(0).scalar_as_f32().unwrap()
    };
    let g1 = grad_with(1);
    let g32 = grad_with(32);
    assert!((g1 - g32).abs() < 1e-5, "{g1} vs {g32}");
    // dy/dx of x^5 at 1.1 = 5 * 1.1^4.
    assert!((g1 - 5.0f32 * 1.1f32.powi(4)).abs() < 1e-3);
}

#[test]
fn second_use_of_loop_output_accumulates() {
    // y = loop_out + loop_out: gradient doubles.
    let mut b = GraphBuilder::new();
    let x = b.placeholder("x", DType::F32);
    let a0 = b.identity(x).unwrap();
    let lim = b.scalar_f32(100.0);
    let three = b.scalar_f32(3.0);
    let outs = b
        .while_loop(
            &[a0],
            |g, v| g.less(v[0], lim),
            |g, v| Ok(vec![g.mul(v[0], three)?]),
            WhileOptions::default(),
        )
        .unwrap();
    let y = b.add(outs[0], outs[0]).unwrap();
    let grads = gradients(&mut b, y, &[x]).unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), Tensor::scalar_f32(2.0));
    let out = run_graph(b, &feeds, &[grads[0]]);
    // 2 -> 6 -> 18 -> 54 -> 162: 4 iterations, dy/dx = 2 * 3^4 = 162.
    assert!((out[0].scalar_as_f32().unwrap() - 162.0).abs() < 1e-3);
}

#[test]
fn dbg_nested_small() {
    // Minimal nested-loop gradient: outer 1 iter, inner 2 iters.
    let mut b = GraphBuilder::new();
    let x = b.placeholder("x", DType::F32);
    let i0 = b.scalar_i64(0);
    let a0 = b.scalar_f32(1.0);
    let outer_lim = b.scalar_i64(1);
    let inner_lim = b.scalar_i64(2);
    let outs = b
        .while_loop(
            &[i0, a0],
            |g, v| g.less(v[0], outer_lim),
            |g, v| {
                let j0 = g.scalar_i64(0);
                let inner = g.while_loop(
                    &[j0, v[1]],
                    |g, w| g.less(w[0], inner_lim),
                    |g, w| {
                        let one = g.scalar_i64(1);
                        Ok(vec![g.add(w[0], one)?, g.mul(w[1], x)?])
                    },
                    WhileOptions::default(),
                )?;
                let one = g.scalar_i64(1);
                Ok(vec![g.add(v[0], one)?, inner[1]])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let grads = gradients(&mut b, outs[1], &[x]).unwrap();
    eprintln!("{}", b.graph());
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), Tensor::scalar_f32(1.5));
    let out = run_graph(b, &feeds, &[grads[0]]);
    // y = x^2, dy/dx = 2x = 3.
    assert!((out[0].scalar_as_f32().unwrap() - 3.0).abs() < 1e-4, "{}", out[0]);
}

#[test]
fn cond_nested_in_cond_gradient() {
    // f(x) = if x > 0 { if x > 1 { x^2 } else { 3x } } else { -x }.
    for (x0, expect) in [(2.0f32, 4.0f32), (0.5, 3.0), (-2.0, -1.0)] {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x", DType::F32);
        let zero = b.scalar_f32(0.0);
        let one = b.scalar_f32(1.0);
        let pos = b.greater(x, zero).unwrap();
        let outs = b
            .cond(
                pos,
                |g| {
                    let big = g.greater(x, one)?;
                    let inner = g.cond(
                        big,
                        |g| Ok(vec![g.square(x)?]),
                        |g| {
                            let three = g.scalar_f32(3.0);
                            Ok(vec![g.mul(x, three)?])
                        },
                    )?;
                    Ok(vec![inner[0]])
                },
                |g| Ok(vec![g.neg(x)?]),
            )
            .unwrap();
        let grads = gradients(&mut b, outs[0], &[x]).unwrap();
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), Tensor::scalar_f32(x0));
        let out = run_graph(b, &feeds, &[grads[0]]);
        assert_eq!(out[0].scalar_as_f32().unwrap(), expect, "x={x0}");
    }
}

#[test]
fn two_gradient_computations_on_one_graph() {
    // gradients() may be called repeatedly on the same builder; each call
    // must get its own stacks and gradient loops.
    let mut b = GraphBuilder::new();
    let x = b.placeholder("x", DType::F32);
    let i0 = b.scalar_i64(0);
    let a0 = b.scalar_f32(1.0);
    let lim = b.scalar_i64(3);
    let outs = b
        .while_loop(
            &[i0, a0],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                Ok(vec![g.add(v[0], one)?, g.mul(v[1], x)?])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let y = outs[1]; // x^3
    let z = b.square(y).unwrap(); // x^6
    let gy = gradients(&mut b, y, &[x]).unwrap();
    let gz = gradients(&mut b, z, &[x]).unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), Tensor::scalar_f32(1.2));
    let out = run_graph(b, &feeds, &[gy[0], gz[0]]);
    let x0: f32 = 1.2;
    assert!((out[0].scalar_as_f32().unwrap() - 3.0 * x0.powi(2)).abs() < 1e-3);
    assert!((out[1].scalar_as_f32().unwrap() - 6.0 * x0.powi(5)).abs() < 2e-2);
}

#[test]
fn select_and_concat_gradients_inside_loop() {
    check_grad(
        |b, x| {
            let i0 = b.scalar_i64(0);
            let a0 = b.constant(vec_t(vec![1.0, 1.0], &[1, 2]));
            let lim = b.scalar_i64(3);
            let outs = b
                .while_loop(
                    &[i0, a0],
                    |g, v| g.less(v[0], lim),
                    |g, v| {
                        let one = g.scalar_i64(1);
                        // concat the state with x, mix, and gate half of it.
                        let joined = g.concat1(&[v[1], x])?;
                        let parts = g.split1(joined, 2)?;
                        let mixed = g.mul(parts[0], parts[1])?;
                        let zero = g.zeros_like(mixed)?;
                        let thresh = g.scalar_f32(0.0);
                        let gate = g.greater(mixed, thresh)?;
                        let gated = g.select(gate, mixed, zero)?;
                        let next = g.tanh(gated)?;
                        Ok(vec![g.add(v[0], one)?, next])
                    },
                    WhileOptions::default(),
                )
                .unwrap();
            b.reduce_sum(outs[1]).unwrap()
        },
        vec_t(vec![0.8, 1.3], &[1, 2]),
        3e-2,
    );
}

#[test]
fn gradient_of_variable_parameters() {
    // Gradients with respect to Variable reads (the training path).
    let mut b = GraphBuilder::new();
    let w = b.variable("w", vec_t(vec![2.0, -1.0], &[2]));
    let s = b.square(w).unwrap();
    let y = b.reduce_sum(s).unwrap();
    let grads = gradients(&mut b, y, &[w]).unwrap();
    let out = run_graph(b, &HashMap::new(), &grads);
    assert_eq!(out[0].as_f32_slice().unwrap(), &[4.0, -2.0]);
}

#[test]
fn function_call_gradient() {
    // f(x) = x^2 + 3x, called at two sites; y = sum(f(x) + f(2x)).
    // d/dx = (2x + 3) + 2(4x + 3) = 10x + 9.
    check_grad(
        |b, x| {
            b.define_function("poly", &[DType::F32], &[DType::F32], |g, p| {
                let sq = g.square(p[0])?;
                let three = g.scalar_f32(3.0);
                let lin = g.mul(p[0], three)?;
                Ok(vec![g.add(sq, lin)?])
            })
            .unwrap();
            let a = b.call1("poly", &[x]).unwrap();
            let two = b.scalar_f32(2.0);
            let x2 = b.mul(x, two).unwrap();
            let c = b.call1("poly", &[x2]).unwrap();
            let s = b.add(a, c).unwrap();
            b.reduce_sum(s).unwrap()
        },
        vec_t(vec![1.5, -0.4], &[2]),
        2e-2,
    );
}

#[test]
fn function_capture_gradient() {
    // The body uses outer `x` directly; the capture becomes an implicit
    // parameter and the gradient flows back through it: y = x^2 * x = x^3.
    check_grad(
        |b, x| {
            let sq = b.square(x).unwrap();
            b.define_function("scale", &[DType::F32], &[DType::F32], |g, p| {
                Ok(vec![g.mul(p[0], x)?])
            })
            .unwrap();
            let y = b.call1("scale", &[sq]).unwrap();
            b.reduce_sum(y).unwrap()
        },
        vec_t(vec![0.7, -1.2], &[2]),
        2e-2,
    );
}

#[test]
fn nested_function_call_gradient() {
    // f calls g; differentiating f's call builds f::grad, whose body
    // differentiates the cloned inner call and builds g::grad.
    check_grad(
        |b, x| {
            b.define_function("inner", &[DType::F32], &[DType::F32], |g, p| {
                Ok(vec![g.tanh(p[0])?])
            })
            .unwrap();
            b.define_function("outer", &[DType::F32], &[DType::F32], |g, p| {
                let t = g.call1("inner", &[p[0]])?;
                Ok(vec![g.mul(t, p[0])?])
            })
            .unwrap();
            let y = b.call1("outer", &[x]).unwrap();
            b.reduce_sum(y).unwrap()
        },
        vec_t(vec![0.4, -0.9], &[2]),
        2e-2,
    );
}

#[test]
fn recursive_function_gradient() {
    // pow(x, n) = if n <= 0 { 1 } else { x * pow(x, n - 1) }.
    // The gradient function is itself recursive: pow::grad calls pow::grad
    // for the cloned recursive call, terminating through the same
    // conditional deadness as the forward recursion.
    check_grad(
        |b, x| {
            b.define_function("pow", &[DType::F32, DType::I64], &[DType::F32], |g, p| {
                let zero = g.scalar_i64(0);
                let done = g.less_equal(p[1], zero)?;
                let outs = g.cond(
                    done,
                    |g| Ok(vec![g.ones_like(p[0])?]),
                    |g| {
                        let one = g.scalar_i64(1);
                        let m = g.sub(p[1], one)?;
                        let rec = g.call1("pow", &[p[0], m])?;
                        Ok(vec![g.mul(p[0], rec)?])
                    },
                )?;
                Ok(vec![outs[0]])
            })
            .unwrap();
            let n = b.scalar_i64(3);
            let y = b.call1("pow", &[x, n]).unwrap();
            b.reduce_sum(y).unwrap()
        },
        vec_t(vec![1.1, 0.6], &[2]),
        2e-2,
    );
}
