//! The gradient engine: region traversal, value resolution (stack saves),
//! and while-loop gradients.

use crate::Result;
use dcf_graph::{
    ContextId, ContextKind, GraphBuilder, GraphError, NodeId, OpKind, TensorArrayHandle, TensorRef,
    WhileContextInfo, WhileOptions,
};
use dcf_tensor::{DType, Tensor};
use std::collections::{HashMap, HashSet};

/// Stride used to compose nested loop iteration indices into one stack
/// slot index: slot = outer_index * STRIDE + inner_index. Bounds each
/// nesting level to `STRIDE` iterations (ample for the paper's workloads).
pub(crate) const STRIDE: i64 = 1 << 20;

/// Computes the symbolic gradients of scalar `y` with respect to each of
/// `xs`, adding the gradient subgraph to the builder.
///
/// Works through conditionals, (nested) while-loops, and TensorArray
/// operations per §5 of the paper. Tensors in `xs` that `y` does not depend
/// on get zero gradients. Must be called with the builder at the root
/// context, on tensors visible from it.
///
/// # Examples
///
/// ```
/// use dcf_graph::GraphBuilder;
/// use dcf_autodiff::gradients;
/// use dcf_tensor::Tensor;
///
/// let mut g = GraphBuilder::new();
/// let x = g.variable("x", Tensor::scalar_f32(3.0));
/// let y = g.square(x).unwrap();
/// let grads = gradients(&mut g, y, &[x]).unwrap(); // dy/dx = 2x
/// assert_eq!(grads.len(), 1);
/// ```
pub fn gradients(gb: &mut GraphBuilder, y: TensorRef, xs: &[TensorRef]) -> Result<Vec<TensorRef>> {
    if gb.graph().dtype(y) != DType::F32 {
        return Err(GraphError::Invalid("gradients: y must be f32".into()));
    }
    let mut engine = Engine::new(gb);
    let seed = gb.ones_like(y)?;
    let got = engine.region(gb, vec![(y, seed)], xs)?;
    let mut out = Vec::with_capacity(xs.len());
    for (x, g) in xs.iter().zip(got) {
        match g {
            Some(g) => out.push(g),
            None => out.push(gb.zeros_like(*x)?),
        }
    }
    Ok(out)
}

/// Per-TensorArray gradient bookkeeping.
pub(crate) struct TaGrad {
    /// The gradient array's handle tensor.
    pub handle: TensorRef,
    /// The most recent flow value: reads of the gradient array must be
    /// ordered after the writes this flow covers.
    pub flow: TensorRef,
    /// Element dtype.
    pub dtype: DType,
}

/// One level of the gradient-loop nesting (the innermost is last).
pub(crate) struct Level {
    /// The forward while-context this level differentiates.
    pub wctx: ContextId,
    /// Composite stack-slot index for this level's current forward
    /// iteration, valid in the gradient loop body.
    pub grad_idx: TensorRef,
    /// Memoized stack pops: forward tensor -> value in the gradient body.
    pub pops: HashMap<TensorRef, TensorRef>,
    /// Current flow per TensorArray handle manipulated inside this level.
    pub ta_flows: HashMap<TensorRef, TensorRef>,
}

/// The gradient construction engine.
pub(crate) struct Engine {
    /// Topological positions of all *forward* nodes (gradient-side nodes
    /// added later have no position and are never traversed).
    pub order: Vec<NodeId>,
    /// Stack handles per saved forward tensor.
    saves: HashMap<TensorRef, TensorRef>,
    /// Forward composite index expression per while context.
    fwd_idx: HashMap<ContextId, TensorRef>,
    /// Gradient arrays per resolved forward handle.
    pub ta_grads: HashMap<TensorRef, TaGrad>,
    /// Gradient-loop nesting (empty at the root region).
    pub levels: Vec<Level>,
    /// Unique suffix for TensorArrayGrad sources.
    grad_count: usize,
}

impl Engine {
    pub(crate) fn new(gb: &GraphBuilder) -> Engine {
        let order = gb.graph().topo_order().unwrap_or_default();
        Engine {
            order,
            saves: HashMap::new(),
            fwd_idx: HashMap::new(),
            ta_grads: HashMap::new(),
            levels: Vec::new(),
            grad_count: 0,
        }
    }

    /// The while-context of the current region (`None` at the root).
    fn region_wctx(&self) -> Option<ContextId> {
        self.levels.last().map(|l| l.wctx)
    }

    /// Innermost while-context of a graph context.
    fn innermost_while(gb: &GraphBuilder, ctx: ContextId) -> Option<ContextId> {
        gb.graph().while_chain(ctx).last().copied()
    }

    /// Follows constant-`Enter` chains back to the externally visible
    /// tensor they forward.
    pub(crate) fn resolve_source(gb: &GraphBuilder, mut t: TensorRef) -> TensorRef {
        loop {
            let node = gb.graph().node(t.node);
            match &node.op {
                OpKind::Enter { is_constant: true, .. } => t = node.inputs[0],
                _ => return t,
            }
        }
    }

    // ------------------------------------------------------------------
    // The region sweep
    // ------------------------------------------------------------------

    /// Differentiates the current region: starting from `seeds`, sweeps the
    /// forward nodes of the region in reverse topological order applying
    /// per-op gradient rules, and returns the accumulated gradient for each
    /// of `wanted`.
    pub(crate) fn region(
        &mut self,
        gb: &mut GraphBuilder,
        seeds: Vec<(TensorRef, TensorRef)>,
        wanted: &[TensorRef],
    ) -> Result<Vec<Option<TensorRef>>> {
        let region_w = self.region_wctx();
        let mut partials: HashMap<TensorRef, Vec<TensorRef>> = HashMap::new();
        for (t, g) in seeds {
            // Only differentiable tensors carry gradients (loop counters
            // and predicates are threaded as zero loop variables but never
            // seeded).
            if gb.graph().dtype(t) == DType::F32 {
                partials.entry(t).or_default().push(g);
            }
        }
        let stop: HashSet<usize> = wanted.iter().map(|t| t.node.0).collect();

        // Loop supernodes directly nested in this region, triggered at the
        // smallest topo position among each loop's exits (visited last in
        // the reverse sweep, when every exit's gradient is final).
        let mut pos_of: HashMap<usize, usize> = HashMap::new();
        for (p, id) in self.order.iter().enumerate() {
            pos_of.insert(id.0, p);
        }
        let mut triggers: HashMap<usize, ContextId> = HashMap::new();
        let mut loop_exit_nodes: HashSet<usize> = HashSet::new();
        for ctx in gb.graph().contexts() {
            if let ContextKind::While(info) = &ctx.kind {
                // The loop's exits live in its parent context; the loop is
                // nested in this region iff the exits' innermost while is
                // the region's.
                if info.exits.is_empty() {
                    continue;
                }
                let exit_ctx = gb.graph().node(info.exits[0].node).ctx;
                if Self::innermost_while(gb, exit_ctx) != region_w {
                    continue;
                }
                let min_pos =
                    info.exits.iter().filter_map(|e| pos_of.get(&e.node.0)).copied().min();
                if let Some(p) = min_pos {
                    triggers.insert(p, ctx.id);
                    for e in &info.exits {
                        loop_exit_nodes.insert(e.node.0);
                    }
                    if let Some(ce) = info.counter_exit {
                        loop_exit_nodes.insert(ce.node.0);
                    }
                }
            }
        }

        for p in (0..self.order.len()).rev() {
            let nid = self.order[p];
            if let Some(&wctx) = triggers.get(&p) {
                self.loop_supernode(gb, wctx, &mut partials)?;
                continue;
            }
            if loop_exit_nodes.contains(&nid.0) || stop.contains(&nid.0) {
                continue;
            }
            let (ctx, op, n_out) = {
                let node = gb.graph().node(nid);
                (node.ctx, node.op.clone(), node.op.num_outputs())
            };
            if Self::innermost_while(gb, ctx) != region_w {
                continue;
            }
            // TensorArray ops participate whenever their array has a
            // gradient array, even without direct output gradients: the
            // dependence runs through the resource.
            let forced = self.is_forced_ta(gb, nid, &op);
            let has_grads =
                (0..n_out).any(|port| partials.contains_key(&TensorRef { node: nid, port }));
            if !has_grads && !forced {
                continue;
            }
            let out_grads: Vec<Option<TensorRef>> = (0..n_out)
                .map(|port| self.take_partials(gb, &mut partials, TensorRef { node: nid, port }))
                .collect::<Result<_>>()?;

            let in_grads = self.node_grad(gb, nid, &op, ctx, &out_grads)?;
            let inputs: Vec<TensorRef> = gb.graph().node(nid).inputs.clone();
            for (inp, g) in inputs.into_iter().zip(in_grads) {
                if let Some(g) = g {
                    // Gradients into constants are always discarded; skip
                    // accumulating (and, transitively, computing) them.
                    let is_const = matches!(gb.graph().node(inp.node).op, OpKind::Const(_));
                    if !is_const && gb.graph().dtype(inp) == DType::F32 {
                        partials.entry(inp).or_default().push(g);
                    }
                }
            }
        }

        wanted.iter().map(|t| self.take_partials(gb, &mut partials, *t)).collect()
    }

    /// Sums the partial gradients of `t`, if any.
    fn take_partials(
        &mut self,
        gb: &mut GraphBuilder,
        partials: &mut HashMap<TensorRef, Vec<TensorRef>>,
        t: TensorRef,
    ) -> Result<Option<TensorRef>> {
        match partials.remove(&t) {
            None => Ok(None),
            Some(gs) if gs.is_empty() => Ok(None),
            Some(gs) => {
                if gs.len() == 1 {
                    return Ok(Some(gs[0]));
                }
                // Accumulate in the context of the first partial, which by
                // construction matches the forward tensor's level.
                let target_ctx = if self.levels.is_empty() {
                    gb.graph().node(gs[0].node).ctx
                } else {
                    gb.current_ctx()
                };
                gb.reenter_context(target_ctx);
                let sum = gb.add_n(&gs);
                gb.exit_reentered_context();
                Ok(Some(sum?))
            }
        }
    }

    fn is_forced_ta(&self, gb: &GraphBuilder, nid: NodeId, op: &OpKind) -> bool {
        match op {
            OpKind::TensorArrayWrite | OpKind::TensorArrayUnpack => {
                let handle = gb.graph().node(nid).inputs[0];
                let resolved = Self::resolve_source(gb, handle);
                self.ta_grads.contains_key(&resolved)
            }
            _ => false,
        }
    }

    /// Applies the gradient rule for one node (dispatch lives in
    /// `rules.rs`). At the root region, rules run re-entered into the
    /// forward node's context so conditional gradients stay guarded; inside
    /// gradient loops they run in the gradient body context.
    fn node_grad(
        &mut self,
        gb: &mut GraphBuilder,
        nid: NodeId,
        op: &OpKind,
        fwd_ctx: ContextId,
        out_grads: &[Option<TensorRef>],
    ) -> Result<Vec<Option<TensorRef>>> {
        let reenter = self.levels.is_empty();
        if reenter {
            gb.reenter_context(fwd_ctx);
        }
        let r = self.rule(gb, nid, op, out_grads);
        if reenter {
            gb.exit_reentered_context();
        }
        r
    }

    // ------------------------------------------------------------------
    // In-graph function gradients
    // ------------------------------------------------------------------

    /// Gradient of a `Call`: a call of the function's *gradient function*.
    ///
    /// `f::grad` takes `f`'s parameters plus one incoming gradient per f32
    /// result and returns one gradient per f32 parameter. It is built once
    /// (memoized in the graph's function registry) by cloning `f`'s body
    /// and differentiating the clone — the per-call-frame intermediates of
    /// the original call are gone by the time the gradient runs, so the
    /// gradient function recomputes the forward pass from its arguments.
    /// A recursive call inside the clone differentiates through this same
    /// rule and finds `f::grad` already declared, so the gradient of a
    /// recursive function is itself recursive (and pushes its own `Call`
    /// frames at run time).
    pub(crate) fn call_grad(
        &mut self,
        gb: &mut GraphBuilder,
        nid: NodeId,
        fname: &str,
        result_dtypes: &[DType],
        inputs: &[TensorRef],
        out_grads: &[Option<TensorRef>],
    ) -> Result<Vec<Option<TensorRef>>> {
        let param_dtypes = gb
            .graph()
            .function(fname)
            .ok_or_else(|| {
                GraphError::Invalid(format!("gradient of Call to unknown function '{fname}'"))
            })?
            .param_dtypes
            .clone();
        if param_dtypes.len() != inputs.len() {
            return Err(GraphError::Invalid(format!(
                "gradient of Call('{fname}'): {} call inputs but {} parameters",
                inputs.len(),
                param_dtypes.len()
            )));
        }
        let grad_name = format!("{fname}::grad");
        if gb.graph().function(&grad_name).is_none() {
            // The rule runs re-entered into the forward node's context;
            // function definitions live at the root.
            gb.reenter_context(ContextId::ROOT);
            let r = Self::define_grad_function(gb, fname, &grad_name);
            gb.exit_reentered_context();
            r?;
        }
        // Arguments: the resolved forward arguments, then one incoming
        // gradient per f32 result (zeros where no gradient flowed).
        let mut args = Vec::with_capacity(inputs.len() + result_dtypes.len());
        for &a in inputs {
            args.push(self.resolve(gb, a)?);
        }
        for (port, &dt) in result_dtypes.iter().enumerate() {
            if dt != DType::F32 {
                continue;
            }
            match out_grads.get(port).copied().flatten() {
                Some(dy) => args.push(dy),
                None => {
                    let y = self.resolve(gb, TensorRef { node: nid, port })?;
                    args.push(gb.zeros_like(y)?);
                }
            }
        }
        let gouts = gb.call(&grad_name, &args)?;
        let mut grads = vec![None; inputs.len()];
        let mut k = 0;
        for (i, &dt) in param_dtypes.iter().enumerate() {
            if dt == DType::F32 {
                grads[i] = Some(gouts[k]);
                k += 1;
            }
        }
        Ok(grads)
    }

    /// Builds `grad_name`, the gradient function of `fname` (see
    /// [`Engine::call_grad`]). Must run at the root context.
    fn define_grad_function(gb: &mut GraphBuilder, fname: &str, grad_name: &str) -> Result<()> {
        let f = gb.graph().function(fname).expect("caller checked the function exists");
        let fwd_params = f.param_dtypes.clone();
        let fwd_results = f.result_dtypes.clone();
        let n_fwd = fwd_params.len();
        let mut param_dtypes = fwd_params.clone();
        param_dtypes.extend(fwd_results.iter().copied().filter(|&d| d == DType::F32));
        if param_dtypes.len() == n_fwd {
            return Err(GraphError::Invalid(format!(
                "gradient of Call('{fname}'): function has no f32 results"
            )));
        }
        let result_dtypes: Vec<DType> =
            fwd_params.iter().copied().filter(|&d| d == DType::F32).collect();
        if result_dtypes.is_empty() {
            return Err(GraphError::Invalid(format!(
                "gradient of Call('{fname}'): function has no f32 parameters"
            )));
        }
        gb.define_function(grad_name, &param_dtypes, &result_dtypes, |g, params| {
            let rets = g.clone_function_body(fname, &params[..n_fwd])?;
            // A fresh engine *after* cloning, so its topological order
            // covers the cloned forward nodes.
            let mut engine = Engine::new(g);
            let mut seeds = Vec::with_capacity(rets.len());
            let mut gi = n_fwd;
            for (i, &dt) in fwd_results.iter().enumerate() {
                if dt == DType::F32 {
                    seeds.push((rets[i], params[gi]));
                    gi += 1;
                }
            }
            let wanted: Vec<TensorRef> = params[..n_fwd]
                .iter()
                .zip(&fwd_params)
                .filter(|&(_, &d)| d == DType::F32)
                .map(|(&p, _)| p)
                .collect();
            let got = engine.region(g, seeds, &wanted)?;
            wanted
                .iter()
                .zip(got)
                .map(|(&x, gr)| match gr {
                    Some(gr) => Ok(gr),
                    None => g.zeros_like(x),
                })
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // Value resolution (§5.1 stack saves)
    // ------------------------------------------------------------------

    /// Returns the value of forward tensor `t` as usable in the current
    /// gradient context: the tensor itself at the root region (or for
    /// values from outer scopes), or a stack pop of the saved per-iteration
    /// value inside gradient loops.
    pub(crate) fn resolve(&mut self, gb: &mut GraphBuilder, t: TensorRef) -> Result<TensorRef> {
        let t = Self::resolve_source(gb, t);
        if self.levels.is_empty() {
            return Ok(t);
        }
        let t_ctx = gb.graph().node(t.node).ctx;
        let t_while = Self::innermost_while(gb, t_ctx);
        let Some(t_while) = t_while else {
            // A value from outside every loop: usable directly (the builder
            // threads it in as a loop constant on use).
            return Ok(t);
        };
        // Find the gradient level differentiating t's loop.
        let Some(level_idx) = self.levels.iter().position(|l| l.wctx == t_while) else {
            return Err(GraphError::Invalid(format!(
                "cannot resolve {} across unrelated loops",
                gb.graph().node(t.node).name
            )));
        };
        if let Some(v) = self.levels[level_idx].pops.get(&t) {
            return Ok(*v);
        }
        let v = self.pop_value(gb, level_idx, t)?;
        self.levels[level_idx].pops.insert(t, v);
        Ok(v)
    }

    /// Builds the stack save (forward push) and gradient pop for `t` at
    /// gradient level `level_idx`.
    fn pop_value(
        &mut self,
        gb: &mut GraphBuilder,
        level_idx: usize,
        t: TensorRef,
    ) -> Result<TensorRef> {
        let handle = self.ensure_save(gb, t)?;
        let wctx = self.levels[level_idx].wctx;
        let mut idx = self.levels[level_idx].grad_idx;
        // Values produced under conditionals were only pushed when the
        // branch was taken; gate the pop with the same (saved) predicates
        // so it is dead in the other iterations (§5.1).
        let t_ctx = gb.graph().node(t.node).ctx;
        let chain = gb.graph().context_chain(t_ctx);
        let start = chain.iter().position(|&c| c == wctx).map(|p| p + 1).unwrap_or(chain.len());
        for &cctx in &chain[start..] {
            if let ContextKind::Cond(info) = &gb.graph().context(cctx).kind {
                let (pred, branch) = (info.pred, info.branch);
                let rp = self.resolve(gb, pred)?;
                let sw = gb.add_op(OpKind::Switch, &[idx, rp])?;
                idx = TensorRef { node: sw, port: branch.port() };
            }
        }
        let dtype = gb.graph().dtype(t);
        let device = gb.graph().node(t.node).device.clone();
        let pop = gb.stack_pop(handle, idx, dtype)?;
        if let Some(d) = device {
            gb.set_node_device(pop.node, d);
        }
        Ok(pop)
    }

    /// Ensures `t` is saved by the forward computation: creates the stack
    /// (at the root) and the forward `StackPush` indexed by the composite
    /// iteration counter, on first use.
    fn ensure_save(&mut self, gb: &mut GraphBuilder, t: TensorRef) -> Result<TensorRef> {
        if let Some(&h) = self.saves.get(&t) {
            return Ok(h);
        }
        let t_ctx = gb.graph().node(t.node).ctx;
        let t_while = Self::innermost_while(gb, t_ctx)
            .ok_or_else(|| GraphError::Invalid("ensure_save outside any loop".into()))?;
        let swap = gb.graph().context(t_while).as_while().map(|w| w.swap_memory).unwrap_or(false);
        // The stack resource lives at the root so pushes (in the forward
        // frame) and pops (in the gradient frame) share it.
        gb.reenter_context(ContextId::ROOT);
        let anchor = gb.scalar_i64(0);
        let handle = gb.stack_create(anchor, swap)?;
        gb.exit_reentered_context();

        let idx = self.forward_index(gb, t_while)?;
        let device = gb.graph().node(t.node).device.clone();
        gb.reenter_context(t_ctx);
        let push = gb.stack_push(handle, idx, t);
        gb.exit_reentered_context();
        let push = push?;
        // Save and restore on the device that produced the value.
        if let Some(d) = device {
            gb.set_node_device(push.node, d);
        }
        self.saves.insert(t, handle);
        Ok(handle)
    }

    /// The composite forward iteration index for values in `wctx`:
    /// `(((i_outermost) * STRIDE + ...) * STRIDE) + i_innermost`.
    fn forward_index(&mut self, gb: &mut GraphBuilder, wctx: ContextId) -> Result<TensorRef> {
        if let Some(&i) = self.fwd_idx.get(&wctx) {
            return Ok(i);
        }
        let chain = gb.graph().while_chain(wctx);
        gb.reenter_context(wctx);
        let built = (|| {
            let mut idx: Option<TensorRef> = None;
            for w in &chain {
                let counter = gb
                    .graph()
                    .context(*w)
                    .as_while()
                    .and_then(|i| i.counter_body)
                    .ok_or_else(|| GraphError::Invalid("loop missing counter".into()))?;
                idx = Some(match idx {
                    None => counter,
                    Some(prev) => {
                        let stride = gb.constant(Tensor::scalar_i64(STRIDE));
                        let scaled = gb.mul(prev, stride)?;
                        gb.add(scaled, counter)?
                    }
                });
            }
            idx.ok_or_else(|| GraphError::Invalid("empty while chain".into()))
        })();
        gb.exit_reentered_context();
        let idx = built?;
        self.fwd_idx.insert(wctx, idx);
        Ok(idx)
    }

    // ------------------------------------------------------------------
    // While-loop gradients (§5.1)
    // ------------------------------------------------------------------

    /// Differentiates one while loop nested in the current region, consuming
    /// its exits' partial gradients and accumulating gradients onto its
    /// initial values and loop-invariant captures.
    fn loop_supernode(
        &mut self,
        gb: &mut GraphBuilder,
        wctx: ContextId,
        partials: &mut HashMap<TensorRef, Vec<TensorRef>>,
    ) -> Result<()> {
        let info: WhileContextInfo = gb
            .graph()
            .context(wctx)
            .as_while()
            .cloned()
            .ok_or_else(|| GraphError::Invalid("loop supernode on non-while".into()))?;
        // Collect exit gradients.
        let exit_grads: Vec<Option<TensorRef>> = info
            .exits
            .iter()
            .map(|e| self.take_partials(gb, partials, *e))
            .collect::<Result<_>>()?;

        // Does any gradient actually flow into this loop?
        let body_ta_handles = self.body_ta_handles(gb, wctx);
        if exit_grads.iter().all(|g| g.is_none()) && body_ta_handles.is_empty() {
            return Ok(());
        }

        // Trip count N, resolved into the current gradient context.
        let n_exit = info
            .counter_exit
            .ok_or_else(|| GraphError::Invalid("while loop missing counter exit".into()))?;
        let n = self.resolve(gb, n_exit)?;

        // Differentiable loop variables: f32 only.
        let var_count = info.exits.len();
        let mut g_init = Vec::with_capacity(var_count);
        for (i, eg) in exit_grads.iter().enumerate() {
            let g = match eg {
                Some(g) => *g,
                None => {
                    let v = self.resolve(gb, info.exits[i])?;
                    gb.zeros_like(v)?
                }
            };
            g_init.push(g);
        }

        // Loop-invariant captures with differentiable dtype.
        let caps: Vec<(TensorRef, TensorRef)> = info
            .captures
            .iter()
            .filter(|(ext, _)| gb.graph().dtype(*ext) == DType::F32)
            .cloned()
            .collect();
        let mut acc_init = Vec::with_capacity(caps.len());
        for (ext, _) in &caps {
            let v = self.resolve(gb, *ext)?;
            acc_init.push(gb.zeros_like(v)?);
        }

        // Gradient arrays and flow variables for every TensorArray touched
        // by the body.
        let mut flow_handles = Vec::new();
        let mut flow_init = Vec::new();
        for h in &body_ta_handles {
            let entry = self.ensure_ta_grad(gb, *h)?;
            flow_handles.push(*h);
            flow_init.push(entry);
        }

        // Assemble the gradient loop.
        let zero = gb.scalar_i64(0);
        let mut inits = vec![zero];
        inits.extend(g_init.iter().copied());
        inits.extend(acc_init.iter().copied());
        inits.extend(flow_init.iter().copied());

        let body_results = info.body_results.clone();
        let body_inputs = info.body_inputs.clone();
        let cap_inners: Vec<TensorRef> = caps.iter().map(|(_, inner)| *inner).collect();
        let parent_grad_idx = self.levels.last().map(|l| l.grad_idx);

        let mut body_err: Option<GraphError> = None;
        let outs = gb.while_loop(
            &inits,
            |g, vars| g.less(vars[0], n),
            |g, vars| {
                let one = g.scalar_i64(1);
                let nm1 = g.sub(n, one)?;
                let k = g.sub(nm1, vars[0])?;
                let grad_idx = match parent_grad_idx {
                    None => k,
                    Some(p) => {
                        let stride = g.constant(Tensor::scalar_i64(STRIDE));
                        let scaled = g.mul(p, stride)?;
                        g.add(scaled, k)?
                    }
                };
                let mut ta_flows = HashMap::new();
                for (h, fv) in flow_handles.iter().zip(&vars[1 + var_count + caps.len()..]) {
                    ta_flows.insert(*h, *fv);
                }
                self.levels.push(Level { wctx, grad_idx, pops: HashMap::new(), ta_flows });

                let run = (|| {
                    let mut seeds = Vec::new();
                    for (i, r) in body_results.iter().enumerate() {
                        seeds.push((*r, vars[1 + i]));
                    }
                    let mut wanted = body_inputs.clone();
                    wanted.extend(&cap_inners);
                    let got = self.region(g, seeds, &wanted)?;

                    let mut results = Vec::with_capacity(vars.len());
                    let j1 = g.add(vars[0], one)?;
                    results.push(j1);
                    for i in 0..var_count {
                        results.push(match got[i] {
                            Some(grad) => grad,
                            None => g.zeros_like(vars[1 + i])?,
                        });
                    }
                    for (j, _) in caps.iter().enumerate() {
                        let acc = vars[1 + var_count + j];
                        results.push(match got[var_count + j] {
                            Some(grad) => g.add(acc, grad)?,
                            None => acc,
                        });
                    }
                    // Updated flows (reads/writes inside the body advanced
                    // them).
                    let level = self.levels.last().expect("level pushed above");
                    for h in &flow_handles {
                        results.push(level.ta_flows[h]);
                    }
                    Ok(results)
                })();
                self.levels.pop();
                match run {
                    Ok(r) => Ok(r),
                    Err(e) => {
                        body_err = Some(e);
                        // Return structurally valid values so while_loop can
                        // unwind; the recorded error is surfaced below.
                        Ok(vars.to_vec())
                    }
                }
            },
            WhileOptions {
                parallel_iterations: info.parallel_iterations,
                swap_memory: info.swap_memory,
                name: Some(format!("grad_{}", info.frame)),
            },
        );
        if let Some(e) = body_err {
            return Err(e);
        }
        let outs = outs?;

        // Accumulate: gradient loop exits onto the forward inits and
        // captures.
        for i in 0..var_count {
            let init_input = gb.graph().node(info.enters[i].node).inputs[0];
            partials.entry(init_input).or_default().push(outs[1 + i]);
        }
        for (j, (ext, _)) in caps.iter().enumerate() {
            partials.entry(*ext).or_default().push(outs[1 + var_count + j]);
        }
        // Record final flows so later (earlier-in-forward) TensorArray
        // gradients order after the loop's writes.
        for (j, h) in flow_handles.iter().enumerate() {
            let flow = outs[1 + var_count + caps.len() + j];
            if let Some(entry) = self.ta_grads.get_mut(h) {
                entry.flow = flow;
            }
        }
        Ok(())
    }

    /// Resolved handles of every TensorArray the loop body touches with a
    /// differentiable operation.
    fn body_ta_handles(&self, gb: &GraphBuilder, wctx: ContextId) -> Vec<TensorRef> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for node in gb.graph().nodes() {
            let in_body = gb.graph().while_chain(node.ctx).contains(&wctx);
            if !in_body {
                continue;
            }
            let relevant = matches!(
                node.op,
                OpKind::TensorArrayRead
                    | OpKind::TensorArrayWrite
                    | OpKind::TensorArrayPack
                    | OpKind::TensorArrayUnpack
            );
            if !relevant {
                continue;
            }
            let h = Self::resolve_source(gb, node.inputs[0]);
            // Only arrays that already have gradient flow matter; arrays
            // whose gradients originate inside the loop (reads feeding the
            // loss path) are detected via the pack/read gradients instead.
            if self.ta_grads.contains_key(&h) && seen.insert(h) {
                out.push(h);
            }
        }
        // Arrays only read in the body still need flow threading when their
        // gradient array will be written inside the gradient loop; those
        // were covered above because the pack gradient (processed earlier in
        // the reverse sweep) created the entry. Arrays first seen inside the
        // loop (read-only inputs) are added lazily by the read rule; to give
        // them flow variables, include arrays with reads whose gradient
        // entry does not exist yet.
        for node in gb.graph().nodes() {
            if !matches!(node.op, OpKind::TensorArrayRead) {
                continue;
            }
            if !gb.graph().while_chain(node.ctx).contains(&wctx) {
                continue;
            }
            let h = Self::resolve_source(gb, node.inputs[0]);
            if seen.insert(h) {
                out.push(h);
            }
        }
        out
    }

    /// Looks up or creates the gradient array for a resolved forward
    /// handle, returning its current flow.
    pub(crate) fn ensure_ta_grad(
        &mut self,
        gb: &mut GraphBuilder,
        h: TensorRef,
    ) -> Result<TensorRef> {
        if let Some(e) = self.ta_grads.get(&h) {
            return Ok(e.flow);
        }
        let dtype = match &gb.graph().node(h.node).op {
            OpKind::TensorArrayNew { dtype, .. } => *dtype,
            _ => DType::F32,
        };
        self.grad_count += 1;
        let source = format!("grad{}", self.grad_count);
        let zero_flow = gb.scalar_f32(0.0);
        let id = gb.add_op(OpKind::TensorArrayGrad { source }, &[h, zero_flow])?;
        let entry = TaGrad {
            handle: TensorRef { node: id, port: 0 },
            flow: TensorRef { node: id, port: 1 },
            dtype,
        };
        let flow = entry.flow;
        self.ta_grads.insert(h, entry);
        Ok(flow)
    }

    /// Builds a [`TensorArrayHandle`] view of a gradient array with the
    /// current flow in the active region.
    pub(crate) fn ta_grad_view(
        &mut self,
        gb: &mut GraphBuilder,
        h: TensorRef,
    ) -> Result<TensorArrayHandle> {
        self.ensure_ta_grad(gb, h)?;
        let entry = &self.ta_grads[&h];
        let (handle, dtype, root_flow) = (entry.handle, entry.dtype, entry.flow);
        let flow =
            self.levels.last().and_then(|l| l.ta_flows.get(&h).copied()).unwrap_or(root_flow);
        Ok(TensorArrayHandle { handle, flow, dtype })
    }

    /// Records an updated flow for `h` in the active region.
    pub(crate) fn update_ta_flow(&mut self, h: TensorRef, flow: TensorRef) {
        if let Some(level) = self.levels.last_mut() {
            if let std::collections::hash_map::Entry::Occupied(mut e) = level.ta_flows.entry(h) {
                e.insert(flow);
                return;
            }
        }
        if let Some(entry) = self.ta_grads.get_mut(&h) {
            entry.flow = flow;
        }
    }
}
