//! Reverse-mode automatic differentiation through dynamic control flow.
//!
//! This crate implements §5 of the paper: given a graph built by
//! `dcf-graph`, [`gradients`] adds a subgraph computing `dy/dx` for a
//! scalar-valued `y` and any set of tensors `xs` — including through
//! `cond`, (nested) `while_loop`, and TensorArray operations:
//!
//! * **Conditionals** (§5.1): the gradient of a `cond` is a `cond` running
//!   the branch gradients. Mechanically, the gradient of `Merge` is a pair
//!   of `Switch`es on the original predicate, and the gradient of a guard
//!   `Switch` is a `Merge` (missing branch gradients are substituted with
//!   branch-guarded zeros).
//! * **While loops** (§5.1): the gradient of a loop is another loop that
//!   runs the body's gradient once per forward iteration, in reverse. The
//!   forward loop is augmented (via its implicit counter) with **stack
//!   saves** of every intermediate the gradient needs; the gradient loop
//!   pops them. Stacks are *index-addressed* (slot = iteration number, with
//!   nesting levels composed into one index), which preserves the paper's
//!   pairing while staying correct under parallel iterations — the
//!   lowering the paper attributes to XLA. Values saved under a
//!   conditional are pushed and popped under the same (saved) predicate,
//!   exactly as §5.1 describes for `cond` nested in `while_loop`.
//!   Gradients of loop-invariant captures are accumulated across gradient
//!   iterations; the forward trip count is taken from the loop's counter
//!   exit.
//! * **TensorArrays** (§5.2): each forward array gets a gradient array;
//!   `read`/`write` and `pack`/`unpack` are duals, and multiple reads of
//!   one location accumulate their partial gradients in the gradient
//!   array. Ordering between gradient reads and writes is threaded through
//!   flow values (extra gradient-loop variables).
//!
//! The resulting gradient graph is ordinary dataflow: it can be placed,
//! partitioned, and executed across devices like any other (§1's
//! "distributed gradient computations").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grad;
mod rules;

pub use grad::gradients;

/// Convenience alias reusing the graph error type.
pub type Result<T> = std::result::Result<T, dcf_graph::GraphError>;

#[cfg(test)]
mod tests;
