//! Integration tests for step-level observability: `RunOptions` /
//! `RunMetadata` / `StepStats` and the Chrome-trace export.
//!
//! These run a nested `while_loop` under `TraceLevel::Full` and check the
//! collected statistics against the loop's exact execution structure, then
//! round-trip the Chrome-trace JSON through the in-repo parser.

use dcf::device::json::{self, Json};
use dcf::device::{chrome_trace_json, StepStats};
use dcf::exec::ExecutorOptions;
use dcf::prelude::*;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Outer-loop trip count of the nested workload.
const OUTER: i64 = 3;
/// Inner-loop trip count per outer trip.
const INNER: i64 = 4;

/// Runs a nested counting loop (`OUTER` outer trips, each running a fresh
/// inner frame of `INNER` trips) traced at `TraceLevel::Full` on one
/// simulated CPU, returning the accumulator value and the step stats.
fn traced_nested_run(workers: usize) -> (i64, StepStats) {
    let mut g = GraphBuilder::new();
    let i0 = g.scalar_i64(0);
    let acc0 = g.scalar_i64(0);
    let olim = g.scalar_i64(OUTER);
    let ilim = g.scalar_i64(INNER);
    let outs = g
        .while_loop(
            &[i0, acc0],
            |g, v| g.less(v[0], olim),
            |g, v| {
                let j0 = g.scalar_i64(0);
                let inner = g.while_loop(
                    &[j0, v[1]],
                    |g, w| g.less(w[0], ilim),
                    |g, w| {
                        let one = g.scalar_i64(1);
                        Ok(vec![g.add(w[0], one)?, g.add(w[1], one)?])
                    },
                    WhileOptions::default(),
                )?;
                let one = g.scalar_i64(1);
                Ok(vec![g.add(v[0], one)?, inner[1]])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let sess = Session::new(
        g.finish().unwrap(),
        Cluster::single_cpu(),
        SessionOptions::functional()
            .with_executor(ExecutorOptions { workers, ..ExecutorOptions::default() }),
    )
    .unwrap();
    let (out, meta) = sess.run(&RunOptions::traced(TraceLevel::Full), &HashMap::new(), &[outs[1]]);
    let out = out.unwrap();
    (out[0].scalar_as_i64().unwrap(), meta.step_stats.expect("trace requested"))
}

#[test]
fn nested_loop_node_stats_are_exact() {
    let (acc, stats) = traced_nested_run(1);
    assert_eq!(acc, OUTER * INNER);
    assert_eq!(stats.devices.len(), 1);
    let dev = &stats.devices[0];
    assert!(!dev.node_stats.is_empty());

    // Every executed activation appears exactly once: (frame activation,
    // iteration, node) is a unique key, and timestamps are ordered.
    let mut seen = HashSet::new();
    for n in &dev.node_stats {
        assert!(
            seen.insert((n.frame.clone(), n.iter, n.node.clone())),
            "activation recorded twice: {} iter {} in {}",
            n.node,
            n.iter,
            n.frame
        );
        assert!(n.start_us <= n.end_us, "unordered span on {}", n.node);
    }

    // One completed activation record per dynamic frame: the root, one
    // outer activation, and one inner activation per outer *iteration* —
    // including the final dead wave, whose Enter tokens still instantiate
    // an (entirely dead) inner frame. Frame base tags nest with '/' per
    // level.
    let root: Vec<_> = dev.frames.iter().filter(|f| f.frame == "root").collect();
    let outer: Vec<_> = dev.frames.iter().filter(|f| f.frame.matches('/').count() == 1).collect();
    let inner: Vec<_> = dev.frames.iter().filter(|f| f.frame.matches('/').count() == 2).collect();
    assert_eq!(root.len(), 1, "frames: {:?}", dev.frames);
    assert_eq!(outer.len(), 1, "frames: {:?}", dev.frames);
    assert_eq!(inner.len(), OUTER as usize + 1, "frames: {:?}", dev.frames);

    // Iterations count every started iteration, including the final one
    // whose predicate came out false (it runs as a dead wave).
    assert_eq!(outer[0].iterations, OUTER as u64 + 1);
    for f in &inner {
        assert_eq!(f.iterations, INNER as u64 + 1, "inner frame {}", f.frame);
    }

    // Dead-token counts match the dead activations recorded per frame,
    // and the termination waves make them non-zero in every loop frame.
    for f in &dev.frames {
        let dead = dev.node_stats.iter().filter(|n| n.frame == f.frame && n.is_dead).count() as u64;
        assert_eq!(f.dead_tokens, dead, "dead-token mismatch in {}", f.frame);
    }
    for f in outer.iter().chain(&inner) {
        assert!(f.dead_tokens > 0, "no termination wave recorded in {}", f.frame);
    }
}

#[test]
fn cond_counts_untaken_branch_as_dead() {
    let mut g = GraphBuilder::new();
    let p = g.placeholder("p", DType::Bool);
    let x = g.scalar_f32(2.0);
    let outs = g
        .cond(
            p,
            |g| {
                let c = g.scalar_f32(10.0);
                Ok(vec![g.add(x, c)?])
            },
            |g| {
                let c = g.scalar_f32(20.0);
                Ok(vec![g.mul(x, c)?])
            },
        )
        .unwrap();
    let sess = Session::new(
        g.finish().unwrap(),
        Cluster::single_cpu(),
        SessionOptions::functional()
            .with_executor(ExecutorOptions { workers: 1, ..ExecutorOptions::default() }),
    )
    .unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("p".to_string(), Tensor::scalar_bool(true));
    let (out, meta) = sess.run(&RunOptions::traced(TraceLevel::Full), &feeds, &[outs[0]]);
    let out = out.unwrap();
    assert_eq!(out[0].scalar_as_f32().unwrap(), 12.0);

    let stats = meta.step_stats.expect("trace requested");
    let dev = &stats.devices[0];
    // The untaken false branch (Mul and its constant) executed dead.
    let dead: Vec<_> = dev.node_stats.iter().filter(|n| n.is_dead).collect();
    assert!(dead.iter().any(|n| n.node.contains("Mul")), "dead nodes: {dead:?}");
    assert!(dead.iter().all(|n| n.frame == "root"), "cond runs in the enclosing frame");
    // The root frame's dead-token count agrees with the recorded dead
    // set. Only the branch op itself runs dead: the guard Switches run
    // live and *emit* dead tokens on their untaken outputs.
    let root = dev.frames.iter().find(|f| f.frame == "root").expect("root frame stats");
    assert_eq!(root.dead_tokens, dead.len() as u64);
    assert!(root.dead_tokens >= 1, "the untaken Mul runs dead");
}

#[test]
fn chrome_trace_roundtrips_with_serial_tracks() {
    let (_, stats) = traced_nested_run(2);
    let text = chrome_trace_json(&stats);
    let doc = json::parse(&text).expect("emitted trace JSON parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());

    // Group complete ("X") events into (pid, tid) tracks.
    let mut tracks: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let pid = e.get("pid").unwrap().as_u64().unwrap();
        let tid = e.get("tid").unwrap().as_u64().unwrap();
        let ts = e.get("ts").unwrap().as_u64().unwrap();
        let dur = e.get("dur").unwrap().as_u64().unwrap();
        tracks.entry((pid, tid)).or_default().push((ts, ts + dur));
    }
    assert!(!tracks.is_empty());

    // Each stream/scheduler track maps to one OS thread, so its events
    // must be strictly non-overlapping. The rendezvous track (tid 90) and
    // the network process (pid 0) model concurrent waits and are exempt.
    let mut scheduler_tracks = 0;
    for ((pid, tid), mut spans) in tracks {
        if pid == 0 || tid == 90 {
            continue;
        }
        if tid >= 100 {
            scheduler_tracks += 1;
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "overlapping events in track pid={pid} tid={tid}: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
    assert!(scheduler_tracks >= 1, "no scheduler tracks emitted");
}

#[test]
fn gpu_kernel_streams_are_recorded_and_serial() {
    let mut cluster = Cluster::new();
    cluster.add_device(0, DeviceProfile::gpu_k40().with_time_scale(0.01));
    let mut g = GraphBuilder::new();
    let mut rng = TensorRng::new(5);
    let w = g.constant(rng.uniform(&[8, 8], -1.0, 1.0));
    let x0 = g.constant(rng.uniform(&[8, 8], -1.0, 1.0));
    let i0 = g.scalar_i64(0);
    let lim = g.scalar_i64(6);
    let outs = g
        .while_loop(
            &[i0, x0],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                Ok(vec![g.add(v[0], one)?, g.matmul(v[1], w)?])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let sess = Session::new(g.finish().unwrap(), cluster, SessionOptions::functional()).unwrap();
    let (result, meta) =
        sess.run(&RunOptions::traced(TraceLevel::Full), &HashMap::new(), &[outs[1]]);
    result.unwrap();
    let stats = meta.step_stats.expect("trace requested");
    let dev = &stats.devices[0];
    assert!(!dev.kernel_stats.is_empty(), "Full trace records stream kernels");

    // Kernels on one stream execute FIFO on one thread: never overlapping.
    let mut by_stream: BTreeMap<&str, Vec<(u64, u64)>> = BTreeMap::new();
    for k in &dev.kernel_stats {
        by_stream.entry(k.stream.as_str()).or_default().push((k.start_us, k.end_us));
    }
    for (stream, mut spans) in by_stream {
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "overlapping kernels on {stream}: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
    let mem = dev.memory.expect("Full trace snapshots the allocator");
    assert!(mem.peak_bytes > 0);

    // The export of a kernel-bearing trace parses as well.
    let doc = json::parse(&chrome_trace_json(&stats)).expect("trace JSON parses");
    assert!(!doc.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
}

#[test]
fn software_level_skips_device_events() {
    let mut g = GraphBuilder::new();
    let x = g.scalar_f32(3.0);
    let y = g.scalar_f32(4.0);
    let z = g.add(x, y).unwrap();
    let sess = Session::local(g.finish().unwrap()).unwrap();
    let (result, meta) = sess.run(&RunOptions::traced(TraceLevel::Software), &HashMap::new(), &[z]);
    result.unwrap();
    let stats = meta.step_stats.expect("trace requested");
    let dev = &stats.devices[0];
    assert!(!dev.node_stats.is_empty(), "software level records node timings");
    assert!(dev.kernel_stats.is_empty(), "no kernel events below Full");
    assert!(stats.transfers.is_empty(), "no transfer events below Full");
}
