//! Property-based tests of the dynamic batcher's scatter transparency
//! (requires `--features proptest`; see the note in Cargo.toml).
//!
//! Property: for a batch-linear model, submitting any mix of request sizes
//! and values through a [`Batcher`] yields, per request, exactly the bytes
//! a private `Session::run` of that request's feed would produce — for any
//! batching policy (batch size, linger window) the policy validator
//! accepts. With `--features proptest,faultinject` the same property is
//! re-checked under a seeded lossy network with generous retries.

use dcf::prelude::*;
use dcf::serve::{Batcher, ModelSignature};
use dcf::tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic batch-linear model: two loop iterations of
/// `y = tanh(y · W) + y` on `x: [B, 3]` (matmul rows are independent,
/// tanh/add are elementwise). With `distributed` the tanh is placed on
/// machine 1, so every iteration crosses the simulated network — the
/// surface fault plans act on. Returns the graph plus its signature.
fn residual_model(distributed: bool) -> (dcf::graph::Graph, ModelSignature) {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", DType::F32);
    let w = g.constant(TensorRng::new(13).uniform(&[3, 3], -0.7, 0.7));
    let i0 = g.scalar_i64(0);
    let trips = g.scalar_i64(2);
    let outs = g
        .while_loop(
            &[i0, x],
            |g, v| g.less(v[0], trips),
            |g, v| {
                let one = g.scalar_i64(1);
                let h = g.matmul(v[1], w)?;
                let h = if distributed {
                    g.with_device("/machine:1/cpu:0", |g| g.tanh(h))?
                } else {
                    g.tanh(h)?
                };
                let h = g.add(h, v[1])?;
                Ok(vec![g.add(v[0], one)?, h])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let sig = ModelSignature::new().feed("x", DType::F32, &[3]).fetch(outs[1]);
    (g.finish().unwrap(), sig)
}

/// A session for [`residual_model`]: single-CPU when local, two machines
/// when distributed.
fn session_for(distributed: bool) -> (Session, ModelSignature) {
    let (graph, sig) = residual_model(distributed);
    let sess = if distributed {
        let mut c = Cluster::new();
        c.add_device(0, dcf::device::DeviceProfile::cpu());
        c.add_device(1, dcf::device::DeviceProfile::cpu());
        Session::new(graph, c, SessionOptions::functional()).unwrap()
    } else {
        Session::local(graph).unwrap()
    };
    (sess, sig)
}

/// Runs `row_counts.len()` requests (sizes from `row_counts`, values from
/// `seed`) through a fresh batcher with the given policy knobs and checks
/// every response bit-for-bit against a private run on a reference
/// session. Returns the number of batched steps issued.
fn check_scatter_transparency(
    row_counts: &[usize],
    seed: u64,
    max_batch_size: usize,
    linger_ms: u64,
    run_options: RunOptions,
    distributed: bool,
) -> Result<u64, TestCaseError> {
    let (session, sig) = session_for(distributed);
    let batcher = Batcher::new(
        "prop",
        Arc::new(session),
        sig,
        BatchPolicy {
            max_batch_size,
            max_queue_delay: Duration::from_millis(linger_ms),
            run_options,
            ..BatchPolicy::default()
        },
    )
    .unwrap();
    // The reference session never sees the fault plan: it supplies the
    // fault-free baseline each batched slice must match bit-for-bit.
    let (reference, ref_sig) = session_for(distributed);

    let mut rng = TensorRng::new(seed);
    let requests: Vec<HashMap<String, Tensor>> = row_counts
        .iter()
        .map(|&rows| {
            let mut feeds = HashMap::new();
            feeds.insert("x".to_string(), rng.uniform(&[rows, 3], -3.0, 3.0));
            feeds
        })
        .collect();
    let tickets: Vec<_> =
        requests.iter().map(|feeds| batcher.submit(Request::new(feeds.clone())).unwrap()).collect();
    for (feeds, ticket) in requests.iter().zip(tickets) {
        let resp = ticket.wait().unwrap();
        let alone = reference.eval(feeds, &ref_sig.fetches).unwrap();
        prop_assert!(resp.outputs[0].value_eq(&alone[0]), "batched slice differs from private run");
        prop_assert_eq!(resp.outputs[0].shape().dim(0), feeds["x"].shape().dim(0));
    }
    let snap = batcher.snapshot();
    prop_assert_eq!(snap.served, requests.len() as u64);
    Ok(snap.batches)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Concat→run→scatter is invisible to clients for any request mix and
    /// any valid policy.
    #[test]
    fn batched_scatter_is_transparent(
        row_counts in proptest::collection::vec(1usize..4, 1..8),
        seed in any::<u64>(),
        max_batch_size in 4usize..12,
        linger_ms in 0u64..8,
    ) {
        check_scatter_transparency(
            &row_counts,
            seed,
            max_batch_size,
            linger_ms,
            RunOptions::default(),
            false,
        )?;
    }

    /// With a generous linger window and a burst smaller than one batch,
    /// the batcher must coalesce: one step serves every request.
    #[test]
    fn small_bursts_coalesce_into_one_step(
        row_counts in proptest::collection::vec(1usize..3, 2..5),
        seed in any::<u64>(),
    ) {
        let total_rows: usize = row_counts.iter().sum();
        let batches = check_scatter_transparency(
            &row_counts,
            seed,
            total_rows.max(8),
            200,
            RunOptions::default(),
            false,
        )?;
        prop_assert_eq!(batches, 1, "burst fit one batch but took {} steps", batches);
    }
}

#[cfg(feature = "faultinject")]
mod faults {
    use super::*;
    use dcf::runtime::{FaultPlan, RetryPolicy};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Scatter transparency survives a lossy network: seeded drops,
        /// delays, and duplicates on every transfer, absorbed by retries.
        #[test]
        fn batched_scatter_is_transparent_under_faults(
            row_counts in proptest::collection::vec(1usize..4, 1..6),
            seed in any::<u64>(),
        ) {
            let plan = FaultPlan::seeded(seed)
                .with_drop(0.2)
                .with_delay(0.3, Duration::from_millis(1))
                .with_duplicate(0.2);
            let generous = RetryPolicy { max_retries: 16, ..RetryPolicy::default() };
            check_scatter_transparency(
                &row_counts,
                seed,
                8,
                4,
                RunOptions::default().with_retry(generous).with_fault_plan(plan),
                true,
            )?;
        }
    }
}

mod assemble_policy {
    use super::*;
    use dcf::serve::batcher::assemble_testing::{replay, Entry, Outcome};

    /// The intended lane/expiry/row-cap policy, restated independently:
    /// per lane (interactive first), expired entries are removed wherever
    /// they sit; live entries are taken FIFO while they fit, and the
    /// first live entry that does not fit blocks every live entry behind
    /// it (expiry continues past the block).
    fn model(entries: &[Entry], max_rows: usize) -> Vec<Outcome> {
        let mut outcomes = vec![Outcome::Queued; entries.len()];
        let mut rows = 0usize;
        let mut pos = 0usize;
        for lane in [true, false] {
            let mut blocked = false;
            for (i, e) in entries.iter().enumerate().filter(|(_, e)| e.interactive == lane) {
                if e.expired {
                    outcomes[i] = Outcome::Expired;
                } else if !blocked && rows + e.rows <= max_rows {
                    rows += e.rows;
                    outcomes[i] = Outcome::Batched(pos);
                    pos += 1;
                } else {
                    blocked = true;
                }
            }
        }
        outcomes
    }

    proptest! {
        /// The real `assemble` matches the model outcome-for-outcome, and
        /// the named invariants hold: no expired request survives the
        /// sweep, FIFO is preserved among live requests, and the
        /// `queued_rows` counter exactly tracks what the lanes hold.
        #[test]
        fn assemble_matches_model_on_arbitrary_lanes(
            entries in proptest::collection::vec(
                (1usize..6, any::<bool>(), any::<bool>())
                    .prop_map(|(rows, interactive, expired)| Entry { rows, interactive, expired }),
                0..24,
            ),
            max_rows in 1usize..12,
        ) {
            let r = replay(&entries, max_rows);
            prop_assert_eq!(&r.outcomes, &model(&entries, max_rows));

            // No expired request survives (regardless of position).
            for (e, o) in entries.iter().zip(&r.outcomes) {
                if e.expired {
                    prop_assert_eq!(*o, Outcome::Expired);
                }
            }
            // FIFO among live requests: batch positions increase with
            // queue position, interactive lane strictly first.
            let order: Vec<usize> = [true, false]
                .iter()
                .flat_map(|&lane| {
                    entries
                        .iter()
                        .zip(&r.outcomes)
                        .filter(move |(e, _)| e.interactive == lane)
                        .filter_map(|(_, o)| match o {
                            Outcome::Batched(p) => Some(*p),
                            _ => None,
                        })
                })
                .collect();
            prop_assert!(order.windows(2).all(|w| w[0] < w[1]), "batch order {order:?}");

            // Row accounting: the counter tracks the lanes exactly, the
            // cap is respected, and rows are conserved.
            prop_assert_eq!(r.queued_rows, r.lane_rows);
            prop_assert!(r.batched_rows <= max_rows);
            let live_rows: usize =
                entries.iter().filter(|e| !e.expired).map(|e| e.rows).sum();
            prop_assert_eq!(r.batched_rows + r.lane_rows, live_rows);
        }
    }
}
