//! End-to-end tests for in-graph functions and recursion (PR 9).
//!
//! A `Call` lowers onto the executor's frame machinery: every call site
//! pushes a fresh dynamically tagged frame, arguments are delivered to the
//! body's `FunctionParam` nodes, and `FunctionRet` values flow back to the
//! call site's consumers in the parent frame. These tests pin the
//! user-visible guarantees:
//!
//! 1. A recursive function runs and differentiates, and its results are
//!    bit-identical across the `OptLevel` × `MemPlan` grid (optimization
//!    must neither cross call boundaries nor perturb values).
//! 2. Recursion depth is bounded: exceeding `RunOptions::max_frame_depth`
//!    fails with the structured `FrameDepthExceeded` error, not unbounded
//!    memory growth — and the limit also applies per run, so a depth that
//!    fits the default succeeds in the same session afterwards.
//! 3. Graph compilation (frame-name interning included) is per-session
//!    state: many sessions compiling and running call-heavy graphs
//!    concurrently never interfere.
//! 4. Mutual recursion works through forward declaration
//!    (`declare_function` before `define_function`), and a declared
//!    function that is called but never defined is rejected at
//!    `finish()` — not discovered as a dangling call at run time.

use dcf::exec::ExecError;
use dcf::ml::{fib, lstm_stack_calls, parity, LstmCell};
use dcf::prelude::*;
use std::collections::HashMap;

/// Builds `y = fib(x, n)` (`= F(n) · x`) plus `dy/dx` (`= F(n)`).
fn fib_graph(n: i64) -> (dcf::graph::Graph, Vec<TensorRef>) {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", DType::F32);
    let nt = g.scalar_i64(n);
    let y = fib(&mut g, "fib", x, nt).unwrap();
    let grads = gradients(&mut g, y, &[x]).unwrap();
    (g.finish().unwrap(), vec![y, grads[0]])
}

fn feed(x: f32) -> HashMap<String, Tensor> {
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), Tensor::scalar_f32(x));
    feeds
}

#[test]
fn recursive_fib_bit_identical_across_opt_and_memplan_grid() {
    // F(9) = 55 with F(0) = F(1) = 1.
    let mut results: Vec<(String, Vec<Tensor>)> = Vec::new();
    for opt in [OptLevel::None, OptLevel::Standard] {
        for plan in [MemPlan::Off, MemPlan::On] {
            let (graph, fetches) = fib_graph(9);
            let mut cluster = Cluster::new();
            cluster.add_device(0, DeviceProfile::gpu_k40().with_time_scale(0.0));
            let sess = Session::new(
                graph,
                cluster,
                SessionOptions::functional().with_optimization(opt).with_memory_plan(plan),
            )
            .unwrap();
            let out = sess.eval(&feed(1.25), &fetches).unwrap();
            results.push((format!("{opt:?}/{plan:?}"), out));
        }
    }
    let (ref base_cfg, ref base) = results[0];
    assert_eq!(base[0].scalar_as_f32().unwrap(), 55.0 * 1.25);
    assert_eq!(base[1].scalar_as_f32().unwrap(), 55.0);
    for (cfg, out) in &results[1..] {
        for (a, b) in base.iter().zip(out) {
            assert!(a.value_eq(b), "{cfg} diverged from {base_cfg}");
        }
    }
}

#[test]
fn exceeding_max_frame_depth_is_a_structured_error() {
    // fib(x, 12) recurses 11 frames deep along its leftmost spine; a
    // ceiling of 4 must trip before any unbounded frame growth.
    let (graph, fetches) = fib_graph(12);
    let sess = Session::local(graph).unwrap();
    let opts = RunOptions::default().with_max_frame_depth(4);
    let (result, metadata) = sess.run(&opts, &feed(1.0), &fetches);
    match result {
        Err(ExecError::FrameDepthExceeded { limit, frame }) => {
            assert_eq!(limit, 4);
            assert!(frame.contains("call:fib"), "offending frame should be a call tag: {frame}");
        }
        other => panic!("expected FrameDepthExceeded, got {other:?}"),
    }
    assert!(metadata.abort_reason.is_some(), "failed runs report an abort reason");

    // The cap is per run, not per session: the same session completes the
    // same step under the default depth, and leaves no residue behind.
    let (result, metadata) = sess.run(&RunOptions::default(), &feed(1.0), &fetches);
    let out = result.unwrap();
    assert_eq!(out[0].scalar_as_f32().unwrap(), 233.0); // F(12) = 233
    assert!(sess.quiescent_step(metadata.step));
}

#[test]
fn deep_linear_recursion_hits_default_depth_ceiling() {
    // countdown(x, n) = n <= 0 ? x : countdown(x + 1, n - 1): linear
    // recursion n frames deep. 200 fits the default ceiling of 256;
    // 400 must fail with the structured error rather than exhaust memory.
    let build = |n: i64| {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", DType::F32);
        g.define_function("countdown", &[DType::F32, DType::I64], &[DType::F32], |g, p| {
            let zero = g.scalar_i64(0);
            let done = g.less_equal(p[1], zero)?;
            let outs = g.cond(
                done,
                |_g| Ok(vec![p[0]]),
                |g| {
                    let onef = g.scalar_f32(1.0);
                    let onei = g.scalar_i64(1);
                    let xn = g.add(p[0], onef)?;
                    let m = g.sub(p[1], onei)?;
                    Ok(vec![g.call1("countdown", &[xn, m])?])
                },
            )?;
            Ok(vec![outs[0]])
        })
        .unwrap();
        let nt = g.scalar_i64(n);
        let y = g.call1("countdown", &[x, nt]).unwrap();
        (g.finish().unwrap(), y)
    };

    let (graph, y) = build(200);
    let sess = Session::local(graph).unwrap();
    let out = sess.eval(&feed(0.5), &[y]).unwrap();
    assert_eq!(out[0].scalar_as_f32().unwrap(), 200.5);

    let (graph, y) = build(400);
    let sess = Session::local(graph).unwrap();
    let (result, _) = sess.run(&RunOptions::default(), &feed(0.5), &[y]);
    match result {
        Err(ExecError::FrameDepthExceeded { limit, .. }) => {
            assert_eq!(limit, dcf::exec::DEFAULT_MAX_FRAME_DEPTH);
        }
        other => panic!("expected FrameDepthExceeded, got {other:?}"),
    }
}

#[test]
fn mutually_recursive_parity_unwinds_through_forward_declaration() {
    // even(n) and odd(n) call each other: even(n) = n == 0 ? 1 : odd(n-1),
    // odd(n) = n == 0 ? 0 : even(n-1). Neither body can be defined before
    // the other exists, so this exercises declare-then-define.
    let mut g = GraphBuilder::new();
    let n = g.placeholder("n", DType::I64);
    let is_even = parity(&mut g, "parity", n).unwrap();
    let graph = g.finish().unwrap();
    let sess = Session::local(graph).unwrap();
    for v in 0..=7i64 {
        let mut feeds = HashMap::new();
        feeds.insert("n".to_string(), Tensor::scalar_i64(v));
        let out = sess.eval(&feeds, &[is_even]).unwrap();
        let expect = i64::from(v % 2 == 0);
        assert_eq!(
            out[0].scalar_as_i64().unwrap(),
            expect,
            "parity({v}) unwound {v} mutual frames to the wrong base case"
        );
    }

    // The same graph differentiates nothing (i64 outputs) but must keep
    // serving across sessions: build a second independent session over a
    // fresh parity graph to confirm declaration state is per-builder.
    let mut g = GraphBuilder::new();
    let n = g.placeholder("n", DType::I64);
    let is_even = parity(&mut g, "parity", n).unwrap();
    let sess2 = Session::local(g.finish().unwrap()).unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("n".to_string(), Tensor::scalar_i64(6));
    assert_eq!(sess2.eval(&feeds, &[is_even]).unwrap()[0].scalar_as_i64().unwrap(), 1);
}

#[test]
fn calling_a_declared_but_undefined_function_fails_at_finish() {
    let mut g = GraphBuilder::new();
    g.declare_function("phantom", &[DType::I64], &[DType::I64]).unwrap();
    let x = g.scalar_i64(3);
    let _y = g.call1("phantom", &[x]).unwrap();
    let err = g.finish().unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("phantom") && msg.contains("undefined"),
        "finish() must name the dangling declaration: {msg}"
    );
}

#[test]
fn concurrent_sessions_compile_and_run_call_graphs_independently() {
    // Frame-name interning happens at ExecGraph compile time; it must be
    // per-compile state. Hammer it: many threads, each compiling its own
    // session over graphs whose call tags collide by name ("fib", the
    // LSTM cell function) and running immediately.
    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                if t % 2 == 0 {
                    let n = 5 + (t as i64 % 3); // F(5..=7) = 8, 13, 21
                    let (graph, fetches) = fib_graph(n);
                    let sess = Session::local(graph).unwrap();
                    let out = sess.eval(&feed(1.0), &fetches).unwrap();
                    let expect = [8.0, 13.0, 21.0][(n - 5) as usize];
                    assert_eq!(out[0].scalar_as_f32().unwrap(), expect);
                    assert_eq!(out[1].scalar_as_f32().unwrap(), expect);
                } else {
                    let mut g = GraphBuilder::new();
                    let mut rng = TensorRng::new(3 + t as u64);
                    let cells: Vec<LstmCell> = (0..3)
                        .map(|l| {
                            let input = if l == 0 { 3 } else { 4 };
                            LstmCell::new(&mut g, &format!("l{l}"), input, 4, &mut rng)
                        })
                        .collect();
                    let x = g.constant(rng.uniform(&[2, 3], -1.0, 1.0));
                    let zero = g.constant(Tensor::zeros(DType::F32, &[2, 4]));
                    let states = vec![(zero, zero); 3];
                    let outs = lstm_stack_calls(&mut g, "lstm_cell", &cells, x, &states).unwrap();
                    let (h, c) = *outs.last().unwrap();
                    let sess = Session::local(g.finish().unwrap()).unwrap();
                    let out = sess.eval(&HashMap::new(), &[h, c]).unwrap();
                    assert_eq!(out[0].shape().dims(), &[2, 4]);
                    for &v in out[0].as_f32_slice().unwrap() {
                        assert!(v.abs() < 1.0, "h = sigmoid * tanh stays in (-1, 1)");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("concurrent session thread panicked");
    }
}
