//! Property-based tests of tensor algebra invariants.

use dcf::tensor::{broadcast_shapes, Shape, Tensor};
use proptest::prelude::*;

fn vec_and_dims() -> impl Strategy<Value = (Vec<f32>, Vec<usize>)> {
    (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c).prop_map(move |v| (v, vec![r, c]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Addition commutes; multiplication commutes; sub is anti-symmetric.
    #[test]
    fn elementwise_algebra((v, d) in vec_and_dims(), (w, e) in vec_and_dims()) {
        prop_assume!(d == e);
        let a = Tensor::from_vec_f32(v, &d).unwrap();
        let b = Tensor::from_vec_f32(w, &d).unwrap();
        prop_assert!(a.add(&b).unwrap().value_eq(&b.add(&a).unwrap()));
        prop_assert!(a.mul(&b).unwrap().value_eq(&b.mul(&a).unwrap()));
        let ab = a.sub(&b).unwrap();
        let ba = b.sub(&a).unwrap().neg().unwrap();
        prop_assert!(ab.allclose(&ba, 1e-5));
    }

    /// Matmul distributes over addition: (a + b)·c == a·c + b·c.
    #[test]
    fn matmul_distributes(
        (m, k, n) in (1usize..4, 1usize..4, 1usize..4),
        seed in any::<u64>(),
    ) {
        let mut rng = dcf::tensor::TensorRng::new(seed);
        let a = rng.uniform(&[m, k], -5.0, 5.0);
        let b = rng.uniform(&[m, k], -5.0, 5.0);
        let c = rng.uniform(&[k, n], -5.0, 5.0);
        let lhs = a.add(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&c).unwrap().add(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3), "{lhs} vs {rhs}");
    }

    /// Transpose is an involution and (a·b)^T == b^T · a^T.
    #[test]
    fn transpose_laws((v, d) in vec_and_dims(), (w, e) in vec_and_dims()) {
        prop_assume!(d[1] == e[0]);
        let a = Tensor::from_vec_f32(v, &d).unwrap();
        let b = Tensor::from_vec_f32(w, &e).unwrap();
        prop_assert!(a.transpose().unwrap().transpose().unwrap().value_eq(&a));
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    /// stack/unstack and concat0 round-trip.
    #[test]
    fn stack_roundtrip((v, d) in vec_and_dims()) {
        let a = Tensor::from_vec_f32(v, &d).unwrap();
        let rows = a.unstack().unwrap();
        prop_assert!(Tensor::stack(&rows).unwrap().value_eq(&a));
        let expanded: Vec<Tensor> =
            rows.iter().map(|r| r.reshape(&[1, d[1]]).unwrap()).collect();
        let concatenated = Tensor::concat0(&expanded).unwrap();
        prop_assert!(concatenated.value_eq(&a));
    }

    /// reduce_to inverts broadcasting: broadcast then reduce == scale.
    #[test]
    fn reduce_to_inverts_broadcast((v, d) in vec_and_dims(), lead in 1usize..4) {
        let a = Tensor::from_vec_f32(v, &d).unwrap();
        let target = [lead, d[0], d[1]];
        let big = a.broadcast_to(&target).unwrap();
        let back = big.reduce_to(a.shape()).unwrap();
        let scaled = a.mul(&Tensor::scalar_f32(lead as f32)).unwrap();
        prop_assert!(back.allclose(&scaled, 1e-4));
    }

    /// Broadcasting is symmetric and monotone in rank.
    #[test]
    fn broadcast_shape_laws(d in 1usize..5, e in 1usize..5) {
        let a = Shape::from([d, 1]);
        let b = Shape::from([1, e]);
        let ab = broadcast_shapes(&a, &b).unwrap();
        let ba = broadcast_shapes(&b, &a).unwrap();
        prop_assert_eq!(ab.clone(), ba);
        prop_assert_eq!(ab.dims(), &[d, e]);
    }

    /// Softmax output is a probability distribution for any input.
    #[test]
    fn softmax_is_distribution((v, d) in vec_and_dims()) {
        let a = Tensor::from_vec_f32(v, &d).unwrap();
        let s = a.softmax_last_axis().unwrap();
        let vals = s.as_f32_slice().unwrap();
        prop_assert!(vals.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
        for r in 0..d[0] {
            let sum: f32 = vals[r * d[1]..(r + 1) * d[1]].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// gather0(scatter_add0) of distinct indices restores the updates.
    #[test]
    fn gather_scatter_duality((v, d) in vec_and_dims()) {
        let updates = Tensor::from_vec_f32(v, &d).unwrap();
        // Distinct indices: identity permutation reversed.
        let idx: Vec<i64> = (0..d[0] as i64).rev().collect();
        let indices = Tensor::from_vec_i64(idx, &[d[0]]).unwrap();
        let table = Tensor::scatter_add0(d[0], &indices, &updates).unwrap();
        let back = table.gather0(&indices).unwrap();
        prop_assert!(back.value_eq(&updates));
    }
}
