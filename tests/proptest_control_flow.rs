//! Property-based tests of the control-flow semantics: for arbitrary
//! programs, the in-graph constructs must agree with direct host
//! evaluation, regardless of the parallel-iterations knob or partitioning.

use dcf::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// A tiny loop-body language: affine update with optional conditional.
#[derive(Clone, Debug)]
struct LoopProgram {
    init: f32,
    scale: f32,
    offset: f32,
    /// When true, even iterations add `offset`, odd iterations subtract it.
    alternating: bool,
    trips: i64,
}

fn program_strategy() -> impl Strategy<Value = LoopProgram> {
    (-2.0f32..2.0, -1.25f32..1.25, -2.0f32..2.0, any::<bool>(), 0i64..12).prop_map(
        |(init, scale, offset, alternating, trips)| LoopProgram {
            init,
            scale,
            offset,
            alternating,
            trips,
        },
    )
}

/// Reference semantics on the host.
fn reference(p: &LoopProgram) -> f32 {
    let mut a = p.init;
    for i in 0..p.trips {
        let off = if p.alternating && i % 2 == 1 { -p.offset } else { p.offset };
        a = a * p.scale + off;
    }
    a
}

/// In-graph semantics.
fn in_graph(p: &LoopProgram, parallel: usize, machines: usize) -> f32 {
    let mut g = GraphBuilder::new();
    let i0 = g.scalar_i64(0);
    let a0 = g.scalar_f32(p.init);
    let lim = g.scalar_i64(p.trips);
    let scale = g.scalar_f32(p.scale);
    let offset = g.scalar_f32(p.offset);
    let alternating = p.alternating;
    let outs = g
        .while_loop(
            &[i0, a0],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                let scaled = if machines > 1 {
                    g.with_device("/machine:1/cpu:0", |g| g.mul(v[1], scale))?
                } else {
                    g.mul(v[1], scale)?
                };
                let scaled = g.with_device("/machine:0/cpu:0", |g| g.identity(scaled))?;
                let next = if alternating {
                    let half_c = g.scalar_f32(0.5);
                    let fi = g.cast(v[0], DType::F32)?;
                    let half = g.mul(fi, half_c)?;
                    let trunc = g.cast(half, DType::I64)?;
                    let back = g.cast(trunc, DType::F32)?;
                    let even = g.equal(half, back)?;
                    let stepped = g.cond(
                        even,
                        |g| Ok(vec![g.add(scaled, offset)?]),
                        |g| Ok(vec![g.sub(scaled, offset)?]),
                    )?;
                    stepped[0]
                } else {
                    g.add(scaled, offset)?
                };
                Ok(vec![g.add(v[0], one)?, next])
            },
            WhileOptions { parallel_iterations: parallel, ..Default::default() },
        )
        .unwrap();
    let mut cluster = Cluster::new();
    for m in 0..machines {
        cluster.add_device(m, DeviceProfile::cpu());
    }
    let sess = Session::new(g.finish().unwrap(), cluster, SessionOptions::functional()).unwrap();
    sess.eval(&HashMap::new(), &[outs[1]]).unwrap()[0].scalar_as_f32().unwrap()
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + b.abs())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// while_loop (+ nested cond) matches direct host evaluation.
    #[test]
    fn loop_matches_host_semantics(p in program_strategy()) {
        let expect = reference(&p);
        let got = in_graph(&p, 32, 1);
        prop_assert!(close(got, expect), "got {got}, expected {expect}");
    }

    /// The parallel-iterations knob never changes values (§4.3).
    #[test]
    fn parallel_iterations_invariant(p in program_strategy(), knob in 1usize..16) {
        let a = in_graph(&p, knob, 1);
        let b = in_graph(&p, 32, 1);
        prop_assert!(close(a, b), "knob={knob}: {a} vs {b}");
    }

    /// Partitioning across machines never changes values (§4.4).
    #[test]
    fn distribution_invariant(p in program_strategy()) {
        let local = in_graph(&p, 32, 1);
        let distributed = in_graph(&p, 32, 2);
        prop_assert!(close(local, distributed), "{local} vs {distributed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// scan over arbitrary inputs equals the host prefix computation.
    #[test]
    fn scan_matches_prefix_sums(xs in proptest::collection::vec(-2.0f32..2.0, 1..10)) {
        let mut g = GraphBuilder::new();
        let elems = g.constant(Tensor::from_vec_f32(xs.clone(), &[xs.len()]).unwrap());
        let init = g.scalar_f32(0.0);
        let r = g.scan(|g, a, e| g.add(a, e), elems, init, WhileOptions::default()).unwrap();
        let sess = Session::local(g.finish().unwrap()).unwrap();
        let out = sess.eval(&HashMap::new(), &[r]).unwrap().remove(0);
        let got = out.as_f32_slice().unwrap();
        let mut acc = 0.0f32;
        for (i, x) in xs.iter().enumerate() {
            acc += x;
            prop_assert!((got[i] - acc).abs() < 1e-4, "prefix {i}: {} vs {acc}", got[i]);
        }
    }

    /// Gradient of a random-trip-count loop matches numerical differentiation.
    #[test]
    fn loop_gradient_matches_numeric(scale in 0.5f32..1.4, trips in 1i64..8) {
        let eval = |xv: f32, want_grad: bool| -> f32 {
            let mut g = GraphBuilder::new();
            let x = g.placeholder("x", DType::F32);
            let i0 = g.scalar_i64(0);
            let lim = g.scalar_i64(trips);
            let c = g.scalar_f32(scale);
            let outs = g.while_loop(
                &[i0, x],
                |g, v| g.less(v[0], lim),
                |g, v| {
                    let one = g.scalar_i64(1);
                    let scaled = g.mul(v[1], c)?;
                    let squashed = g.tanh(scaled)?;
                    Ok(vec![g.add(v[0], one)?, squashed])
                },
                WhileOptions::default(),
            ).unwrap();
            let y = outs[1];
            let fetch = if want_grad {
                dcf::autodiff::gradients(&mut g, y, &[x]).unwrap()[0]
            } else {
                y
            };
            let sess = Session::local(g.finish().unwrap()).unwrap();
            let mut feeds = HashMap::new();
            feeds.insert("x".to_string(), Tensor::scalar_f32(xv));
            sess.eval(&feeds, &[fetch]).unwrap()[0].scalar_as_f32().unwrap()
        };
        let x0 = 0.37f32;
        let analytic = eval(x0, true);
        let eps = 1e-2;
        let numeric = (eval(x0 + eps, false) - eval(x0 - eps, false)) / (2.0 * eps);
        prop_assert!(
            (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
            "analytic {analytic} vs numeric {numeric}"
        );
    }
}
