//! Integration tests for the `dcf-serve` dynamic batcher.
//!
//! The load-bearing property is **bit-identity**: for a batch-linear model
//! (every op treats axis 0 rows independently), concat→run→scatter must
//! produce exactly the bytes each request would have gotten from its own
//! private step. That is what makes dynamic batching transparent to
//! clients. The rest of the file covers the admission-control contract:
//! full queues reject promptly, expired requests never occupy a batch
//! slot, and an aborted batched step fails only its own batch.
//!
//! The `faults` module at the bottom (needs `--features faultinject`)
//! re-checks bit-identity while the batched steps run over a lossy
//! simulated network with retries.

use dcf::device::chrome_trace_json;
use dcf::exec::ExecError;
use dcf::graph::Graph;
use dcf::prelude::*;
use dcf::serve::Batcher;
use dcf::tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small batch-linear model with real control flow: three unrolled-by-
/// loop iterations of `y = tanh(y · W)` on `x: [B, 4]`, fetching both the
/// loop result and its square. Row `i` of a matmul only reads row `i` of
/// the left operand, and tanh/square are elementwise, so every op is
/// row-independent — the precondition for bit-identical scatter.
fn mlp_loop_model() -> (Graph, ModelSignature) {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", DType::F32);
    let w = g.constant(TensorRng::new(7).uniform(&[4, 4], -0.8, 0.8));
    let i0 = g.scalar_i64(0);
    let trips = g.scalar_i64(3);
    let outs = g
        .while_loop(
            &[i0, x],
            |g, v| g.less(v[0], trips),
            |g, v| {
                let one = g.scalar_i64(1);
                let h = g.matmul(v[1], w)?;
                let h = g.tanh(h)?;
                Ok(vec![g.add(v[0], one)?, h])
            },
            WhileOptions::default(),
        )
        .expect("while_loop builds");
    let y = outs[1];
    let sq = g.square(y).unwrap();
    let sig = ModelSignature::new().feed("x", DType::F32, &[4]).fetch(y).fetch(sq);
    (g.finish().expect("graph validates"), sig)
}

#[test]
fn batched_scatter_is_bit_identical_to_individual_runs() {
    let (graph, sig) = mlp_loop_model();
    let session = Arc::new(Session::local(graph).unwrap());
    let batcher = Batcher::new(
        "mlp",
        session,
        sig.clone(),
        BatchPolicy {
            max_batch_size: 8,
            max_queue_delay: Duration::from_millis(25),
            ..BatchPolicy::default()
        },
    )
    .unwrap();

    // An independent reference session, built from scratch, runs every
    // request alone. The builder is deterministic, so the fetch refs from
    // its signature address the same nodes.
    let (ref_graph, ref_sig) = mlp_loop_model();
    let reference = Session::local(ref_graph).unwrap();

    let mut total = 0u64;
    for seed in [11u64, 42, 1234] {
        let mut rng = TensorRng::new(seed);
        let requests: Vec<HashMap<String, Tensor>> = (0..10)
            .map(|_| {
                let rows = 1 + rng.sample_index(3);
                let mut feeds = HashMap::new();
                feeds.insert("x".to_string(), rng.uniform(&[rows, 4], -2.0, 2.0));
                feeds
            })
            .collect();
        total += requests.len() as u64;

        // Enqueue everything before waiting on anything, so the linger
        // window actually coalesces the burst.
        let tickets: Vec<_> = requests
            .iter()
            .map(|feeds| batcher.submit(Request::new(feeds.clone())).unwrap())
            .collect();

        for (feeds, ticket) in requests.iter().zip(tickets) {
            let resp = ticket.wait().unwrap();
            let rows = feeds["x"].shape().dim(0);
            let alone = reference.eval(feeds, &ref_sig.fetches).unwrap();
            assert_eq!(resp.outputs.len(), 2);
            for (got, want) in resp.outputs.iter().zip(&alone) {
                assert_eq!(got.shape().dims(), &[rows, 4]);
                assert!(
                    got.value_eq(want),
                    "batched slice differs from a private run (seed {seed})"
                );
            }
            assert!(resp.batch_rows >= rows);
            assert!(resp.tag.starts_with("mlp/batch-"));
        }
    }

    let snap = batcher.snapshot();
    assert_eq!(snap.served, total);
    assert_eq!(snap.failed + snap.expired + snap.rejected_shape, 0);
    // Batching must actually have happened: fewer steps than requests and
    // more than one row per step on average.
    assert!(snap.batches < total, "no coalescing: {} batches for {} requests", snap.batches, total);
    assert!(snap.mean_batch_rows > 1.0);
    assert!(snap.queue_delay_p99_ms >= snap.queue_delay_p50_ms);
}

#[test]
fn full_queue_rejects_promptly_and_recovers() {
    let (graph, sig) = mlp_loop_model();
    let session = Arc::new(Session::local(graph).unwrap());
    let batcher = Batcher::new(
        "mlp",
        session,
        sig,
        BatchPolicy {
            max_batch_size: 4,
            queue_capacity: 4,
            max_queue_delay: Duration::from_millis(200),
            ..BatchPolicy::default()
        },
    )
    .unwrap();

    let feed = |rows: usize| {
        let mut m = HashMap::new();
        m.insert("x".to_string(), Tensor::fill_f32(0.5, &[rows, 4]));
        m
    };

    // 3 of 4 capacity rows queued; the batcher lingers (3 < max_batch_size
    // and the oldest request is younger than max_queue_delay).
    let queued = batcher.submit(Request::new(feed(3))).unwrap();
    // 2 more rows would exceed capacity: reject *now*, not after a queue
    // timeout.
    let t0 = Instant::now();
    let err = batcher.submit(Request::new(feed(2))).unwrap_err();
    assert!(matches!(err, ExecError::Overloaded(_)), "got {err:?}");
    assert!(t0.elapsed() < Duration::from_millis(100), "backpressure rejection should not block");

    // The queued request still completes once the linger window closes,
    // and the drained queue admits new work again.
    assert_eq!(queued.wait().unwrap().outputs[0].shape().dims(), &[3, 4]);
    assert!(batcher.run(Request::new(feed(2))).is_ok());

    let snap = batcher.snapshot();
    assert_eq!(snap.rejected_overload, 1);
    assert_eq!(snap.served, 2);
}

#[test]
fn expired_request_never_occupies_a_batch_slot() {
    let (graph, sig) = mlp_loop_model();
    let session = Arc::new(Session::local(graph).unwrap());
    let batcher = Batcher::new(
        "mlp",
        session,
        sig,
        BatchPolicy {
            max_batch_size: 8,
            max_queue_delay: Duration::from_millis(150),
            ..BatchPolicy::default()
        },
    )
    .unwrap();

    let feed = |rows: usize| {
        let mut m = HashMap::new();
        m.insert("x".to_string(), Tensor::fill_f32(0.25, &[rows, 4]));
        m
    };

    // Already-expired deadline: rejected synchronously at enqueue.
    let err = batcher.submit(Request::new(feed(1)).with_deadline_in(Duration::ZERO)).unwrap_err();
    assert!(matches!(err, ExecError::DeadlineExceeded { .. }), "got {err:?}");

    // A deadline shorter than the linger window: the batcher must wake for
    // the deadline, complete the request with DeadlineExceeded, and issue
    // **no** step for it.
    let doomed =
        batcher.submit(Request::new(feed(2)).with_deadline_in(Duration::from_millis(20))).unwrap();
    let err = doomed.wait().unwrap_err();
    assert!(matches!(err, ExecError::DeadlineExceeded { .. }), "got {err:?}");
    let snap = batcher.snapshot();
    assert_eq!(snap.expired, 2);
    assert_eq!(snap.batches, 0, "an expired request must never reach a batch");

    // A live request afterwards is served, and its batch contains only its
    // own rows — the expired rows really were discarded.
    let resp = batcher.run(Request::new(feed(1))).unwrap();
    assert_eq!(resp.batch_rows, 1);
    let snap = batcher.snapshot();
    assert_eq!((snap.batches, snap.batched_rows, snap.served), (1, 1, 1));
}

/// A model whose running time is controlled by a feed: loop `y = tanh(y)`
/// until the counter reaches `max(n)`. Huge `n` makes the step overrun its
/// timeout and abort; the abort must fail exactly that batch and leave the
/// batcher (and its session) serving.
fn feed_controlled_loop_model() -> (Graph, ModelSignature) {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", DType::F32);
    let n = g.placeholder("n", DType::F32);
    let lim = g.reduce_max(n).unwrap();
    let i0 = g.scalar_f32(0.0);
    let outs = g
        .while_loop(
            &[i0, x],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_f32(1.0);
                Ok(vec![g.add(v[0], one)?, g.tanh(v[1])?])
            },
            WhileOptions::default(),
        )
        .expect("while_loop builds");
    let sig =
        ModelSignature::new().feed("x", DType::F32, &[]).feed("n", DType::F32, &[]).fetch(outs[1]);
    (g.finish().expect("graph validates"), sig)
}

#[test]
fn aborted_batched_step_fails_only_its_batch() {
    let (graph, sig) = feed_controlled_loop_model();
    let session = Arc::new(Session::local(graph).unwrap());
    let batcher = Batcher::new(
        "looper",
        session.clone(),
        sig,
        BatchPolicy {
            max_batch_size: 8,
            max_queue_delay: Duration::from_millis(2),
            run_options: RunOptions::default().with_timeout(Duration::from_millis(50)),
            ..BatchPolicy::default()
        },
    )
    .unwrap();

    let feed = |trips: f32| {
        let mut m = HashMap::new();
        m.insert("x".to_string(), Tensor::fill_f32(0.5, &[1]));
        m.insert("n".to_string(), Tensor::fill_f32(trips, &[1]));
        m
    };

    // A poison request that loops ~forever: its batched step hits the
    // policy timeout and aborts.
    let err = batcher.run(Request::new(feed(1e9))).unwrap_err();
    assert!(matches!(err, ExecError::DeadlineExceeded { .. }), "got {err:?}");
    let snap = batcher.snapshot();
    assert_eq!((snap.steps_failed, snap.failed), (1, 1));

    // The abort machinery must leave the shared session quiescent and the
    // batcher thread alive: a well-behaved request right after succeeds.
    assert!(session.quiescent(), "aborted batched step leaked run state");
    let resp = batcher.run(Request::new(feed(3.0))).unwrap();
    assert_eq!(resp.outputs[0].shape().dims(), &[1]);
    let snap = batcher.snapshot();
    assert_eq!(snap.served, 1);
    assert!(session.quiescent());
}

#[test]
fn batch_tags_mark_chrome_trace_tracks() {
    // Satellite check, end to end at the session layer the batcher uses:
    // a tagged traced step must carry its tag into every Chrome-trace
    // track (process/thread) name, so concurrently traced batched steps
    // stay distinguishable in the viewer.
    let (graph, sig) = mlp_loop_model();
    let session = Session::local(graph).unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), Tensor::fill_f32(0.1, &[2, 4]));
    let opts = RunOptions::traced(TraceLevel::Full).with_tag("mlp/batch-0");
    let (result, meta) = session.run(&opts, &feeds, &sig.fetches);
    result.unwrap();
    assert_eq!(meta.tag, "mlp/batch-0");
    let trace = chrome_trace_json(&meta.step_stats.expect("trace requested"));
    assert!(trace.contains("[mlp/batch-0]"), "trace track names should carry the batch tag");
}

#[cfg(feature = "faultinject")]
mod faults {
    //! Bit-identity under injected network faults: batched steps hop
    //! machines inside the loop body, the policy's `FaultPlan` drops,
    //! delays, and duplicates those transfers, and generous retries must
    //! absorb all of it without perturbing a single bit of any client's
    //! slice.

    use super::*;
    use dcf::device::DeviceProfile;
    use dcf::runtime::{FaultPlan, RetryPolicy};

    fn two_machines() -> Cluster {
        let mut c = Cluster::new();
        c.add_device(0, DeviceProfile::cpu());
        c.add_device(1, DeviceProfile::cpu());
        c
    }

    /// Like [`mlp_loop_model`] but the tanh lives on machine 1 while the
    /// matmul and loop control live on machine 0, so every iteration of
    /// every batched step crosses the simulated network twice.
    fn distributed_model() -> (Graph, ModelSignature) {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", DType::F32);
        let w = g.constant(TensorRng::new(7).uniform(&[4, 4], -0.8, 0.8));
        let i0 = g.scalar_i64(0);
        let trips = g.scalar_i64(3);
        let outs = g
            .while_loop(
                &[i0, x],
                |g, v| g.less(v[0], trips),
                |g, v| {
                    let one = g.scalar_i64(1);
                    let h = g.matmul(v[1], w)?;
                    let h = g.with_device("/machine:1/cpu:0", |g| g.tanh(h))?;
                    Ok(vec![g.add(v[0], one)?, h])
                },
                WhileOptions::default(),
            )
            .expect("while_loop builds");
        let sig = ModelSignature::new().feed("x", DType::F32, &[4]).fetch(outs[1]);
        (g.finish().expect("graph validates"), sig)
    }

    #[test]
    fn fault_injected_batches_stay_bit_identical() {
        // Fault-free baseline session.
        let (ref_graph, ref_sig) = distributed_model();
        let reference =
            Session::new(ref_graph, two_machines(), SessionOptions::functional()).unwrap();

        let generous = RetryPolicy { max_retries: 16, ..RetryPolicy::default() };
        let mut fault_events_total = 0u64;
        for seed in [1u64, 2, 3, 4] {
            let plan = FaultPlan::seeded(seed)
                .with_drop(0.2)
                .with_delay(0.3, Duration::from_millis(2))
                .with_duplicate(0.2);
            let (graph, sig) = distributed_model();
            let session = Arc::new(
                Session::new(graph, two_machines(), SessionOptions::functional()).unwrap(),
            );
            let batcher = Batcher::new(
                "dist",
                session.clone(),
                sig,
                BatchPolicy {
                    max_batch_size: 8,
                    max_queue_delay: Duration::from_millis(10),
                    run_options: RunOptions::default().with_retry(generous).with_fault_plan(plan),
                    ..BatchPolicy::default()
                },
            )
            .unwrap();

            let mut rng = TensorRng::new(seed ^ 0xD1CE);
            let requests: Vec<HashMap<String, Tensor>> = (0..6)
                .map(|_| {
                    let rows = 1 + rng.sample_index(2);
                    let mut feeds = HashMap::new();
                    feeds.insert("x".to_string(), rng.uniform(&[rows, 4], -1.5, 1.5));
                    feeds
                })
                .collect();
            let tickets: Vec<_> = requests
                .iter()
                .map(|feeds| batcher.submit(Request::new(feeds.clone())).unwrap())
                .collect();
            for (feeds, ticket) in requests.iter().zip(tickets) {
                let resp = ticket.wait().unwrap_or_else(|e| {
                    panic!("fault-injected batch failed past retries (seed {seed}): {e}")
                });
                let alone = reference.eval(feeds, &ref_sig.fetches).unwrap();
                assert!(
                    resp.outputs[0].value_eq(&alone[0]),
                    "faults perturbed a batched slice (seed {seed})"
                );
            }
            let snap = batcher.snapshot();
            assert_eq!(snap.served, 6);
            fault_events_total += snap.fault_events;
            assert!(session.quiescent());
        }
        // The sweep must actually have exercised the fault path.
        assert!(fault_events_total > 0, "no faults fired across the sweep");
    }
}

/// Seeded randomized sweep of the assemble policy against an independent
/// model, runnable without the `proptest` feature (the property-based
/// twin with shrinking lives in `tests/proptest_serve.rs`).
#[test]
fn assemble_policy_matches_model_on_seeded_random_lanes() {
    use dcf::serve::batcher::assemble_testing::{replay, Entry, Outcome};

    // The intended policy, restated independently: per lane (interactive
    // first), expired entries are removed wherever they sit; live entries
    // are taken FIFO while they fit; the first live entry that does not
    // fit blocks all live entries behind it, but expiry continues.
    fn model(entries: &[Entry], max_rows: usize) -> Vec<Outcome> {
        let mut outcomes = vec![Outcome::Queued; entries.len()];
        let (mut rows, mut pos) = (0usize, 0usize);
        for lane in [true, false] {
            let mut blocked = false;
            for (i, e) in entries.iter().enumerate().filter(|(_, e)| e.interactive == lane) {
                if e.expired {
                    outcomes[i] = Outcome::Expired;
                } else if !blocked && rows + e.rows <= max_rows {
                    rows += e.rows;
                    outcomes[i] = Outcome::Batched(pos);
                    pos += 1;
                } else {
                    blocked = true;
                }
            }
        }
        outcomes
    }

    let mut s = 0x9e37_79b9_7f4a_7c15u64; // splitmix64 stream
    let mut next = move || {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for case in 0..500 {
        let n = (next() % 24) as usize;
        let entries: Vec<Entry> = (0..n)
            .map(|_| Entry {
                rows: 1 + (next() % 5) as usize,
                interactive: next() % 2 == 0,
                expired: next() % 2 == 0,
            })
            .collect();
        let max_rows = 1 + (next() % 11) as usize;
        let r = replay(&entries, max_rows);
        assert_eq!(
            r.outcomes,
            model(&entries, max_rows),
            "case {case}: entries {entries:?} cap {max_rows}"
        );
        assert_eq!(r.queued_rows, r.lane_rows, "case {case}: counter must track lanes");
        assert!(r.batched_rows <= max_rows, "case {case}: cap violated");
        let live: usize = entries.iter().filter(|e| !e.expired).map(|e| e.rows).sum();
        assert_eq!(r.batched_rows + r.lane_rows, live, "case {case}: rows not conserved");
    }
}
