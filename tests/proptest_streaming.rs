//! Property-based tests of continuous-batching transparency (requires
//! `--features proptest`; see the note in Cargo.toml).
//!
//! Property: for **any** schedule of streams — arbitrary per-stream
//! sequence lengths, join staggering, submit chunking, and batcher knobs
//! (iteration-row cap, linger window) — every stream's concatenated
//! outputs through the shared [`ContinuousBatcher`] are bit-identical to
//! decoding that stream's sequence alone through a same-seeded batch-1
//! `dynamic_rnn` on a private session. Who else shared an iteration, in
//! which rotation order, must be unobservable.

use dcf::graph::Graph;
use dcf::ml::{decode_reference_model, decode_step_model};
use dcf::prelude::*;
use dcf::serve::ModelSignature;
use dcf::tensor::Tensor;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const INPUT: usize = 3;
const HIDDEN: usize = 4;
const OUTPUT: usize = 2;
const WEIGHT_SEED: u64 = 2024;

/// One stream's row in the generated schedule.
#[derive(Debug, Clone)]
struct StreamPlan {
    /// Total decode steps for this stream.
    steps: usize,
    /// Rows per submit chunk (clamped to the remaining steps).
    chunk: usize,
    /// Milliseconds to sleep before joining, staggering admissions so
    /// streams join mid-iteration of earlier ones.
    join_delay_ms: u64,
}

fn arb_plan() -> impl Strategy<Value = StreamPlan> {
    (1usize..7, 1usize..4, 0u64..3).prop_map(|(steps, chunk, join_delay_ms)| StreamPlan {
        steps,
        chunk,
        join_delay_ms,
    })
}

fn streaming_model() -> (Graph, ModelSignature, StreamSpec) {
    let mut g = GraphBuilder::new();
    let m = decode_step_model(&mut g, INPUT, HIDDEN, OUTPUT, WEIGHT_SEED).unwrap();
    let sig = ModelSignature::new().feed(&m.x_feed, DType::F32, &[INPUT]).fetch(m.y);
    let mut spec = StreamSpec::new(&m.slots_feed);
    for (cell, dims) in &m.state_cells {
        spec = spec.with_cell(cell, dims);
    }
    for &w in &m.writes {
        spec = spec.with_state_fetch(w);
    }
    (g.finish().unwrap(), sig, spec)
}

fn reference_outputs(seq: &Tensor, steps: usize) -> Tensor {
    let mut g = GraphBuilder::new();
    let y = decode_reference_model(&mut g, INPUT, HIDDEN, OUTPUT, WEIGHT_SEED, steps).unwrap();
    let sess = Session::local(g.finish().unwrap()).unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), seq.clone());
    sess.eval(&feeds, &[y]).unwrap().remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any join/finish schedule is transparent, and the row accounting
    /// balances: every admitted row is decoded exactly once, every
    /// opened stream retires.
    #[test]
    fn arbitrary_schedules_are_transparent(
        plans in proptest::collection::vec(arb_plan(), 1..6),
        value_seed in any::<u64>(),
        max_iteration_rows in 1usize..6,
        linger_us in 0u64..2_000,
    ) {
        let (graph, sig, spec) = streaming_model();
        let reg = ModelRegistry::new();
        let handle = reg
            .register(
                "prop",
                ModelSpec::local(graph, sig).with_stream(
                    spec.with_iteration_rows(max_iteration_rows)
                        .with_iteration_delay(Duration::from_micros(linger_us)),
                ),
            )
            .unwrap();

        let mut rng = TensorRng::new(value_seed);
        let seqs: Vec<Tensor> =
            plans.iter().map(|p| rng.uniform(&[p.steps, INPUT], -1.0, 1.0)).collect();

        let failures: Vec<String> = std::thread::scope(|scope| {
            let tasks: Vec<_> = plans
                .iter()
                .zip(&seqs)
                .enumerate()
                .map(|(i, (plan, seq))| {
                    let handle = &handle;
                    scope.spawn(move || -> Result<(), String> {
                        std::thread::sleep(Duration::from_millis(plan.join_delay_ms));
                        let stream =
                            handle.open_stream().map_err(|e| format!("open: {e}"))?;
                        let rows = seq
                            .split0(&vec![1; plan.steps])
                            .map_err(|e| format!("split: {e}"))?;
                        let mut got = Vec::new();
                        let mut t = 0usize;
                        while t < plan.steps {
                            let to = (t + plan.chunk).min(plan.steps);
                            let mut feeds = HashMap::new();
                            feeds.insert(
                                "x".to_string(),
                                Tensor::concat0(&rows[t..to])
                                    .map_err(|e| format!("concat: {e}"))?,
                            );
                            let mut r = stream
                                .send(feeds)
                                .map_err(|e| format!("stream {i} step {t}: {e}"))?;
                            got.push(r.outputs.remove(0));
                            t = to;
                        }
                        let have =
                            Tensor::concat0(&got).map_err(|e| format!("concat: {e}"))?;
                        if !have.value_eq(&reference_outputs(seq, plan.steps)) {
                            return Err(format!(
                                "stream {i} ({plan:?}) diverged from its private reference"
                            ));
                        }
                        Ok(())
                    })
                })
                .collect();
            tasks.into_iter().filter_map(|t| t.join().unwrap().err()).collect()
        });
        prop_assert!(failures.is_empty(), "{}", failures.join("; "));

        let a = handle.metrics().aggregate;
        let total_rows: u64 = plans.iter().map(|p| p.steps as u64).sum();
        prop_assert_eq!(a.stream_rows, total_rows, "row accounting leaked");
        prop_assert_eq!(a.streams_opened, plans.len() as u64);
        prop_assert_eq!(a.streams_retired, plans.len() as u64);
        prop_assert_eq!(a.active_streams, 0);
        prop_assert_eq!(a.failed + a.expired + a.streams_expired, 0);
        // Each iteration gathers at most one row per stream and never
        // exceeds the configured cap (the mean is exact; the p99 is a
        // log₂-bucket upper edge and may round up past the cap).
        let bound = max_iteration_rows.min(plans.len()) as f64;
        prop_assert!(
            a.mean_iteration_rows <= bound + 1e-9,
            "mean {} rows/iteration exceeds the {} bound",
            a.mean_iteration_rows,
            bound
        );
    }
}
