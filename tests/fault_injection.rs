//! Fault-injection matrix (requires `--features faultinject`).
//!
//! Property-style check of the failure model: a fig13-shaped nested loop
//! whose inner body hops machines every iteration is run under a sweep of
//! seeded `FaultPlan`s. For every plan the run must either produce values
//! **bit-identical** to the fault-free baseline (retries absorbed the
//! faults, visibly in `RunMetadata`) or fail with a **structured error** —
//! never a hang, a panic, or a wrong value. After every run — successful
//! or aborted — the session's network layer must be quiescent, and the
//! same session must complete a subsequent fault-free run.
//!
//! Run in release for CI (`cargo test --release --features faultinject
//! --test fault_injection`); trip counts shrink under debug builds.

use dcf_device::DeviceProfile;
use dcf_exec::ExecError;
use dcf_graph::{Graph, GraphBuilder, TensorRef, WhileOptions};
use dcf_runtime::{Cluster, FaultPlan, RetryPolicy, RunOptions, Session, SessionOptions};
use std::collections::HashMap;
use std::time::Duration;

#[cfg(debug_assertions)]
const TRIPS: (i64, i64) = (3, 4);
#[cfg(not(debug_assertions))]
const TRIPS: (i64, i64) = (5, 8);

fn two_machines() -> Cluster {
    let mut c = Cluster::new();
    c.add_device(0, DeviceProfile::cpu());
    c.add_device(1, DeviceProfile::cpu());
    c
}

/// Nested loops in the shape of the paper's Figure 13 benchmark: the outer
/// loop counts trips, the inner loop accumulates `outer_index + 1` per
/// trip — with the accumulating add placed on machine 1 while loop control
/// lives on machine 0, so every inner iteration crosses the simulated
/// network twice. Expected fetch: `inner * outer * (outer + 1) / 2`.
fn fig13_graph(outer: i64, inner: i64) -> (Graph, TensorRef) {
    let mut g = GraphBuilder::new();
    let i0 = g.scalar_i64(0);
    let acc0 = g.scalar_i64(0);
    let olim = g.scalar_i64(outer);
    let ilim = g.scalar_i64(inner);
    let outs = g
        .while_loop(
            &[i0, acc0],
            |g, v| g.less(v[0], olim),
            |g, v| {
                let one = g.scalar_i64(1);
                let next_i = g.add(v[0], one)?;
                let j0 = g.scalar_i64(0);
                let inner_outs = g.while_loop(
                    &[j0, v[1]],
                    |g, w| g.less(w[0], ilim),
                    |g, w| {
                        let one = g.scalar_i64(1);
                        let next_j = g.add(w[0], one)?;
                        let remote = g.with_device("/machine:1/cpu:0", |g| g.add(w[1], next_i))?;
                        Ok(vec![next_j, remote])
                    },
                    WhileOptions { parallel_iterations: 4, ..Default::default() },
                )?;
                Ok(vec![next_i, inner_outs[1]])
            },
            WhileOptions::default(),
        )
        .expect("nested while_loop should build");
    (g.finish().expect("graph should validate"), outs[1])
}

fn fig13_session() -> (Session, TensorRef, i64) {
    let (outer, inner) = TRIPS;
    let (graph, fetch) = fig13_graph(outer, inner);
    let sess = Session::new(graph, two_machines(), SessionOptions::functional())
        .expect("session should build");
    (sess, fetch, inner * outer * (outer + 1) / 2)
}

/// The CI matrix: every plan here must end in a bit-identical result or a
/// structured error, on every seed.
fn plan_matrix(seed: u64) -> Vec<(&'static str, FaultPlan, RetryPolicy)> {
    let generous = RetryPolicy { max_retries: 16, ..RetryPolicy::default() };
    vec![
        ("drop-heavy", FaultPlan::seeded(seed).with_drop(0.4), generous),
        (
            "delay",
            FaultPlan::seeded(seed).with_delay(0.5, Duration::from_millis(2)),
            RetryPolicy::default(),
        ),
        ("duplicate", FaultPlan::seeded(seed).with_duplicate(0.5), RetryPolicy::default()),
        ("reorder", FaultPlan::seeded(seed).with_reorder(0.5), RetryPolicy::default()),
        (
            "stall",
            FaultPlan::seeded(seed).with_stall(0, Duration::from_millis(5)),
            RetryPolicy::default(),
        ),
        (
            "mixed",
            FaultPlan::seeded(seed)
                .with_drop(0.25)
                .with_delay(0.25, Duration::from_millis(1))
                .with_duplicate(0.25)
                .with_reorder(0.25),
            generous,
        ),
        // Tight budgets: structured failure is an acceptable outcome, a
        // hang or panic is not.
        ("drop-no-retries", FaultPlan::seeded(seed).with_drop(0.5), RetryPolicy::no_retries()),
        (
            "drop-tight-deadline",
            FaultPlan::seeded(seed).with_drop(0.5),
            RetryPolicy {
                max_retries: 2,
                transfer_deadline: Some(Duration::from_micros(300)),
                ..RetryPolicy::default()
            },
        ),
    ]
}

fn assert_structured(err: &ExecError) {
    assert!(
        matches!(
            err,
            ExecError::TransferFailed { .. }
                | ExecError::Cancelled(_)
                | ExecError::DeadlineExceeded { .. }
        ),
        "fault-injected run must fail with a transport/cancellation error, got: {err}"
    );
}

/// The core property: identical-or-structured-error, quiescent afterwards,
/// reusable afterwards.
#[test]
fn seeded_fault_sweep_is_identical_or_structured_error() {
    let (sess, fetch, expected) = fig13_session();
    let baseline = sess.eval(&HashMap::new(), &[fetch]).expect("fault-free baseline must succeed");
    assert_eq!(baseline[0].scalar_as_i64().unwrap(), expected);

    let seeds: &[u64] = if cfg!(debug_assertions) { &[1, 2, 3] } else { &[1, 2, 3, 4, 5, 6] };
    let (mut ok_runs, mut failed_runs) = (0u32, 0u32);
    for &seed in seeds {
        for (name, plan, retry) in plan_matrix(seed) {
            let wants_retries = plan.drop > 0.0 && retry.max_retries >= 16;
            let opts = RunOptions::default()
                .with_fault_plan(plan)
                .with_retry(retry)
                .with_tag(format!("{name}/seed{seed}"));
            let (result, meta) = sess.run(&opts, &HashMap::new(), &[fetch]);
            match result {
                Ok(values) => {
                    ok_runs += 1;
                    assert_eq!(
                        values[0].scalar_as_i64().unwrap(),
                        expected,
                        "{name}/seed{seed}: values diverged from fault-free baseline"
                    );
                    if wants_retries {
                        assert!(
                            meta.retries > 0,
                            "{name}/seed{seed}: drop plan succeeded without visible retries"
                        );
                    }
                    assert!(meta.abort_reason.is_none());
                }
                Err(e) => {
                    failed_runs += 1;
                    assert_structured(&e);
                    assert_eq!(
                        meta.abort_reason.as_deref(),
                        Some(e.to_string().as_str()),
                        "{name}/seed{seed}: abort_reason must echo the error"
                    );
                }
            }
            assert!(sess.quiescent(), "{name}/seed{seed}: network layer not quiescent after run");
        }
    }
    // The matrix must actually exercise both outcomes: heavy-drop plans
    // with generous retries succeed, zero-retry plans fail.
    assert!(ok_runs > 0, "no fault-injected run succeeded");
    assert!(failed_runs > 0, "no fault-injected run failed structurally");

    // The session is still healthy: a fault-free run on the same session
    // reproduces the baseline.
    let again = sess.eval(&HashMap::new(), &[fetch]).expect("post-sweep run");
    assert_eq!(again[0].scalar_as_i64().unwrap(), expected);
}

/// Determinism: the same seed and plan must inject the same faults and
/// perform the same retries.
#[test]
fn same_seed_same_faults() {
    let (sess, fetch, _) = fig13_session();
    let run = |seed: u64| {
        let opts = RunOptions::default()
            .with_fault_plan(FaultPlan::seeded(seed).with_drop(0.4).with_duplicate(0.3))
            .with_retry(RetryPolicy { max_retries: 16, ..RetryPolicy::default() });
        let (result, meta) = sess.run(&opts, &HashMap::new(), &[fetch]);
        result.expect("generous retries must succeed");
        let mut kinds: Vec<String> = meta
            .fault_events
            .iter()
            .map(|e| format!("{:?}@{}#{}", e.kind, e.key, e.attempt))
            .collect();
        kinds.sort();
        (meta.retries, kinds)
    };
    let (r1, k1) = run(99);
    let (r2, k2) = run(99);
    assert_eq!(r1, r2, "retry counts must be deterministic per seed");
    assert_eq!(k1, k2, "fault logs must be deterministic per seed");
    assert!(r1 > 0, "plan must actually inject drops");
}

/// An aborted (timed-out) distributed run leaves the runtime quiescent and
/// reusable — the acceptance criterion of the fault-injection PR.
#[test]
fn abort_then_rerun_on_same_session() {
    let mut g = GraphBuilder::new();
    let i0 = g.scalar_i64(0);
    let lim = g.scalar_i64(1_000_000_000);
    let outs = g
        .while_loop(
            &[i0],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                // Cross-machine hop every iteration so the abort strands
                // in-flight transfers, not just executor state.
                let next = g.with_device("/machine:1/cpu:0", |g| g.add(v[0], one))?;
                Ok(vec![next])
            },
            WhileOptions::default(),
        )
        .expect("unbounded loop should build");
    let fetch = outs[0];
    let sess = Session::new(g.finish().unwrap(), two_machines(), SessionOptions::functional())
        .expect("session should build");

    let opts = RunOptions::default().with_timeout(Duration::from_millis(50));
    let (result, meta) = sess.run(&opts, &HashMap::new(), &[fetch]);
    let err = result.expect_err("unbounded loop must time out");
    assert!(
        matches!(err, ExecError::DeadlineExceeded { .. } | ExecError::Cancelled(_)),
        "unexpected abort error: {err}"
    );
    assert!(meta.abort_reason.is_some());
    assert!(sess.quiescent(), "abort left live rendezvous entries or in-flight transfers");

    // Same session, fault-free bounded run: must complete correctly.
    let mut g = GraphBuilder::new();
    let x = g.scalar_i64(20);
    let y = g.scalar_i64(22);
    let z = g.add(x, y).unwrap();
    let sess2 = Session::new(g.finish().unwrap(), two_machines(), SessionOptions::functional())
        .expect("session should build");
    let out = sess2.eval(&HashMap::new(), &[z]).expect("fresh run");
    assert_eq!(out[0].scalar_as_i64().unwrap(), 42);

    // And the aborted session itself still works with a satisfiable limit.
    // (Placeholder-free graph: rebuild with a small trip count.)
    let mut g = GraphBuilder::new();
    let i0 = g.scalar_i64(0);
    let lim = g.scalar_i64(10);
    let outs = g
        .while_loop(
            &[i0],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                let next = g.with_device("/machine:1/cpu:0", |g| g.add(v[0], one))?;
                Ok(vec![next])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let sess3 = Session::new(g.finish().unwrap(), two_machines(), SessionOptions::functional())
        .expect("session should build");
    let out = sess3.eval(&HashMap::new(), &[outs[0]]).expect("bounded loop");
    assert_eq!(out[0].scalar_as_i64().unwrap(), 10);

    // Re-running the *aborted* session again still behaves: same timeout,
    // same structured error, still quiescent (no state accreted).
    let (result, _) = sess.run(&opts, &HashMap::new(), &[fetch]);
    let err = result.expect_err("second timed-out run");
    assert!(matches!(err, ExecError::DeadlineExceeded { .. } | ExecError::Cancelled(_)));
    assert!(sess.quiescent());
}
