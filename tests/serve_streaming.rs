//! Integration tests for streaming stateful inference (`dcf-serve`'s
//! sticky streams + continuous batching).
//!
//! The load-bearing property is **transparency**: a stream's outputs must
//! be bit-identical to running that stream's whole sequence alone on a
//! private model instance, no matter which other streams shared its
//! iterations, in what order they joined, or when they finished. The
//! decode-step workload is `dcf_ml::decode_step_model` — a real LSTM step
//! through the `while_loop` machinery, reading and writing per-stream
//! state slots — and the reference is `dcf_ml::decode_reference_model`
//! built from the same seed (bit-identical weights).
//!
//! The rest covers the streaming lifecycle contract end to end through
//! [`ModelHandle::open_stream`]: per-replica stream caps reject with
//! `Overloaded`, deadlines retire streams with structured errors, closed
//! streams answer `StreamClosed`, and pending rows drain when the model
//! is unloaded. The `faults` module (needs `--features faultinject`)
//! re-checks bit-identity while iterations hop a lossy simulated network.

use dcf::exec::ExecError;
use dcf::graph::Graph;
use dcf::ml::{decode_reference_model, decode_step_model};
use dcf::prelude::*;
use dcf::serve::ModelSignature;
use dcf::tensor::Tensor;
use std::collections::HashMap;
use std::time::Duration;

const INPUT: usize = 3;
const HIDDEN: usize = 4;
const OUTPUT: usize = 2;
const WEIGHT_SEED: u64 = 2024;

/// Builds the servable decode-step model: graph, serving signature
/// (clients feed `x` rows, fetch `y`), and the stream spec wiring the
/// slot placeholder and `h`/`c` state cells.
fn streaming_model() -> (Graph, ModelSignature, StreamSpec) {
    let mut g = GraphBuilder::new();
    let m = decode_step_model(&mut g, INPUT, HIDDEN, OUTPUT, WEIGHT_SEED).unwrap();
    let sig = ModelSignature::new().feed(&m.x_feed, DType::F32, &[INPUT]).fetch(m.y);
    let mut spec = StreamSpec::new(&m.slots_feed);
    for (cell, dims) in &m.state_cells {
        spec = spec.with_cell(cell, dims);
    }
    for &w in &m.writes {
        spec = spec.with_state_fetch(w);
    }
    (g.finish().unwrap(), sig, spec)
}

/// The full-sequence reference for one stream: `[T, input]` through the
/// same-seeded batch-1 `dynamic_rnn` on a private session.
fn reference_outputs(seq: &Tensor, steps: usize) -> Tensor {
    let mut g = GraphBuilder::new();
    let y = decode_reference_model(&mut g, INPUT, HIDDEN, OUTPUT, WEIGHT_SEED, steps).unwrap();
    let sess = Session::local(g.finish().unwrap()).unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), seq.clone());
    sess.eval(&feeds, &[y]).unwrap().remove(0)
}

fn x_rows(seq: &Tensor, steps: usize, from: usize, to: usize) -> HashMap<String, Tensor> {
    let rows = seq.split0(&vec![1; steps]).unwrap();
    let chunk = Tensor::concat0(&rows[from..to]).unwrap();
    let mut m = HashMap::new();
    m.insert("x".to_string(), chunk);
    m
}

/// Seeded sweep: streams of different lengths join staggered (mid-loop
/// for the earlier ones), submit in differently sized chunks, and finish
/// at different times — every stream's concatenated outputs must be
/// bit-identical to its private full-sequence reference.
#[test]
fn streams_joining_and_finishing_stay_bit_identical() {
    for sweep_seed in [1u64, 7, 42] {
        let (graph, sig, spec) = streaming_model();
        let reg = ModelRegistry::new();
        let handle = reg
            .register(
                "decoder",
                ModelSpec::local(graph, sig).with_stream(
                    spec.with_iteration_rows(3) // below the stream count: forces rotation
                        .with_iteration_delay(Duration::from_micros(200)),
                ),
            )
            .unwrap();

        let streams = 5usize;
        let mut rng = TensorRng::new(sweep_seed);
        let plans: Vec<(usize, Tensor)> = (0..streams)
            .map(|i| {
                let steps = 3 + 2 * i; // 3, 5, 7, 9, 11
                (steps, rng.uniform(&[steps, INPUT], -1.0, 1.0))
            })
            .collect();

        std::thread::scope(|scope| {
            for (i, (steps, seq)) in plans.iter().enumerate() {
                let handle = &handle;
                scope.spawn(move || {
                    // Staggered joins: later streams join while earlier
                    // ones are mid-decode.
                    std::thread::sleep(Duration::from_millis(i as u64));
                    let stream = handle.open_stream().unwrap();
                    let mut got = Vec::new();
                    // Chunk sizes vary per stream: 1, 2, 3, 1, 2, …
                    let mut t = 0usize;
                    while t < *steps {
                        let take = 1 + (i + t) % 3;
                        let to = (t + take).min(*steps);
                        let mut r = stream.send(x_rows(seq, *steps, t, to)).unwrap();
                        assert_eq!(r.rows, to - t);
                        got.push(r.outputs.remove(0));
                        t = to;
                    }
                    let have = Tensor::concat0(&got).unwrap();
                    let want = reference_outputs(seq, *steps);
                    assert!(
                        have.value_eq(&want),
                        "stream {i} (sweep {sweep_seed}): continuous batching \
                         perturbed outputs"
                    );
                });
            }
        });

        let m = handle.metrics();
        let a = &m.aggregate;
        assert_eq!(a.streams_opened, streams as u64);
        assert_eq!(a.streams_retired, streams as u64, "every stream must retire");
        assert_eq!(a.active_streams, 0);
        let total_rows: u64 = plans.iter().map(|(s, _)| *s as u64).sum();
        assert_eq!(a.stream_rows, total_rows);
        assert_eq!(a.failed + a.expired + a.streams_expired, 0);
        let summary = m.summary();
        assert!(summary.contains("streams:"), "summary must report streaming: {summary}");
    }
}

/// With every stream's rows enqueued before any is awaited, iterations
/// must actually co-batch: far fewer `Session::run`s than rows, with
/// multiple rows per iteration — the continuous batcher merges live
/// streams instead of serving them serially.
#[test]
fn iterations_are_shared_across_streams() {
    let (graph, sig, spec) = streaming_model();
    let reg = ModelRegistry::new();
    let handle = reg
        .register(
            "decoder",
            ModelSpec::local(graph, sig)
                .with_stream(spec.with_iteration_delay(Duration::from_millis(5))),
        )
        .unwrap();

    let streams = 4usize;
    let steps = 6usize;
    let mut rng = TensorRng::new(99);
    let seqs: Vec<Tensor> = (0..streams).map(|_| rng.uniform(&[steps, INPUT], -1.0, 1.0)).collect();

    // Open all streams and enqueue all rows before waiting on anything,
    // so the linger window sees every stream.
    let handles: Vec<_> = (0..streams).map(|_| handle.open_stream().unwrap()).collect();
    let tickets: Vec<_> = handles
        .iter()
        .zip(&seqs)
        .map(|(s, seq)| s.submit(x_rows(seq, steps, 0, steps)).unwrap())
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let r = t.wait().unwrap();
        let want = reference_outputs(&seqs[i], steps);
        assert!(r.outputs[0].value_eq(&want), "stream {i} diverged");
        assert!(r.tag.contains("/iter-"), "{}", r.tag);
        assert!(r.last_step > 0);
    }
    drop(handles);

    let a = handle.metrics().aggregate;
    assert_eq!(a.stream_rows, (streams * steps) as u64);
    assert!(
        a.stream_iterations < a.stream_rows,
        "no co-batching: {} iterations for {} rows",
        a.stream_iterations,
        a.stream_rows
    );
    assert!(
        a.mean_iteration_rows > 1.5,
        "iterations barely shared: mean {} rows",
        a.mean_iteration_rows
    );
    assert!(a.iteration_rows_p99 >= 1);
}

/// The lifecycle surface through the typed handle API: no stream spec →
/// `InvalidConfig`; stream cap → `Overloaded`; expired stream deadline →
/// `DeadlineExceeded`/`StreamClosed`; unload drains pending rows.
#[test]
fn stream_lifecycle_is_structured() {
    // A model registered without a stream spec cannot open streams.
    let (graph, sig, _) = streaming_model();
    let reg = ModelRegistry::new();
    let plain = reg.register("plain", ModelSpec::local(graph, sig)).unwrap();
    assert!(matches!(plain.open_stream().unwrap_err(), ExecError::InvalidConfig(_)));

    // Per-replica stream cap.
    let (graph, sig, spec) = streaming_model();
    let capped = reg
        .register("capped", ModelSpec::local(graph, sig).with_stream(spec.with_max_streams(2)))
        .unwrap();
    let s1 = capped.open_stream().unwrap();
    let _s2 = capped.open_stream().unwrap();
    assert!(matches!(capped.open_stream().unwrap_err(), ExecError::Overloaded(_)));
    assert_eq!(capped.metrics().aggregate.streams_rejected, 1);
    drop(s1);
    // Closing one frees a slot.
    let _s3 = capped.open_stream().unwrap();

    // Deadline: the stream retires, pending rows fail structurally, and
    // later submits are StreamClosed.
    let (graph, sig, spec) = streaming_model();
    let deadlined =
        reg.register("deadlined", ModelSpec::local(graph, sig).with_stream(spec)).unwrap();
    let s = deadlined.open_stream_with_deadline(Duration::from_millis(5)).unwrap();
    std::thread::sleep(Duration::from_millis(15));
    let mut rng = TensorRng::new(5);
    let seq = rng.uniform(&[2, INPUT], -1.0, 1.0);
    match s.submit(x_rows(&seq, 2, 0, 2)) {
        Ok(t) => match t.wait() {
            Err(ExecError::DeadlineExceeded { .. }) | Err(ExecError::StreamClosed(_)) => {}
            other => panic!("expired stream returned {other:?}"),
        },
        Err(ExecError::StreamClosed(_)) => {}
        Err(e) => panic!("unexpected error {e}"),
    }

    // Drain on unload: rows accepted before the model leaves the registry
    // still complete for the ticket holder.
    let (graph, sig, spec) = streaming_model();
    let doomed = reg.register("doomed", ModelSpec::local(graph, sig).with_stream(spec)).unwrap();
    let steps = 4usize;
    let seq = rng.uniform(&[steps, INPUT], -1.0, 1.0);
    let stream = doomed.open_stream().unwrap();
    let ticket = stream.submit(x_rows(&seq, steps, 0, steps)).unwrap();
    assert!(reg.unload("doomed"));
    drop(doomed);
    let r = ticket.wait().unwrap();
    let want = reference_outputs(&seq, steps);
    assert!(r.outputs[0].value_eq(&want), "drained rows must still be exact");
    drop(stream);
}

/// Streams are replica-sticky: on a two-replica model, every iteration
/// tag a stream sees names the same replica, and opens spread across
/// replicas (least-streams routing).
#[test]
fn streams_stick_to_one_replica() {
    let (graph, sig, spec) = streaming_model();
    let reg = ModelRegistry::new();
    let handle = reg
        .register("replicated", ModelSpec::local(graph, sig).with_replicas(2).with_stream(spec))
        .unwrap();

    let mut rng = TensorRng::new(17);
    // Open all four streams first — least-streams routing only spreads
    // load across replicas while earlier streams are still live.
    let streams: Vec<_> = (0..4).map(|_| handle.open_stream().unwrap()).collect();
    let mut replica_of = Vec::new();
    for s in &streams {
        let steps = 3usize;
        let seq = rng.uniform(&[steps, INPUT], -1.0, 1.0);
        let mut tags = Vec::new();
        for t in 0..steps {
            let r = s.send(x_rows(&seq, steps, t, t + 1)).unwrap();
            // "replicated[r0]/iter-12" → "replicated[r0]".
            tags.push(r.tag.split("/iter-").next().unwrap().to_string());
        }
        assert!(
            tags.iter().all(|t| t == &tags[0]),
            "a stream hopped replicas mid-decode: {tags:?}"
        );
        replica_of.push(tags.remove(0));
    }
    // With least-streams routing and 4 concurrently live streams over 2
    // replicas, both replicas must have hosted at least one stream.
    let distinct: std::collections::HashSet<_> = replica_of.iter().collect();
    assert_eq!(distinct.len(), 2, "opens all landed on one replica: {replica_of:?}");
    assert_eq!(handle.replicas(), 2);
}

#[cfg(feature = "faultinject")]
mod faults {
    //! Transparency under injected network faults: the decode iterations
    //! hop machines (state read/accumulate on machine 0, the nonlinearity
    //! on machine 1), the replica's fault plan drops/delays/duplicates
    //! those transfers, and generous retries must absorb all of it
    //! without perturbing any stream's outputs.

    use super::*;
    use dcf::device::DeviceProfile;
    use dcf::runtime::{FaultPlan, RetryPolicy};
    use dcf::serve::{BatchPolicy, StreamHandle};

    fn two_machines() -> Cluster {
        let mut c = Cluster::new();
        c.add_device(0, DeviceProfile::cpu());
        c.add_device(1, DeviceProfile::cpu());
        c
    }

    /// A distributed accumulator stream model: `acc' = tanh(acc + x)`
    /// with the tanh on machine 1, `y = acc' · 2` fetched. Every
    /// iteration crosses the simulated network both ways.
    fn distributed_stream_model() -> (Graph, ModelSignature, StreamSpec) {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", DType::F32);
        let slots = g.placeholder("slots", DType::I64);
        let acc = g.stream_state_read(slots, "acc").unwrap();
        let s = g.add(acc, x).unwrap();
        let t = g.with_device("/machine:1/cpu:0", |g| g.tanh(s)).unwrap();
        let two = g.scalar_f32(2.0);
        let y = g.mul(t, two).unwrap();
        let w = g.stream_state_write(slots, t, "acc").unwrap();
        let sig = ModelSignature::new().feed("x", DType::F32, &[1]).fetch(y);
        let spec = StreamSpec::new("slots").with_cell("acc", &[1]).with_state_fetch(w);
        (g.finish().unwrap(), sig, spec)
    }

    fn register_distributed(
        reg: &ModelRegistry,
        name: &str,
        plan: Option<FaultPlan>,
    ) -> ModelHandle {
        let (graph, sig, spec) = distributed_stream_model();
        let generous = RetryPolicy { max_retries: 16, ..RetryPolicy::default() };
        let mut model = ModelSpec::local(graph, sig)
            .with_policy(BatchPolicy {
                run_options: RunOptions::default().with_retry(generous),
                ..BatchPolicy::default()
            })
            .with_stream(spec.with_iteration_delay(Duration::from_millis(2)));
        model.cluster = two_machines();
        if let Some(plan) = plan {
            model = model.with_replica_fault_plan(0, plan);
        }
        reg.register(name, model).unwrap()
    }

    fn drive(stream: &StreamHandle, seq: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        for chunk in seq.chunks(2) {
            let mut feeds = HashMap::new();
            feeds.insert(
                "x".to_string(),
                Tensor::from_vec_f32(chunk.to_vec(), &[chunk.len(), 1]).unwrap(),
            );
            let r = stream.send(feeds).unwrap_or_else(|e| {
                panic!("fault-injected stream iteration failed past retries: {e}")
            });
            out.extend(r.outputs[0].as_f32_slice().unwrap());
        }
        out
    }

    #[test]
    fn fault_injected_streams_stay_bit_identical() {
        let reg = ModelRegistry::new();
        let reference = register_distributed(&reg, "clean", None);

        let mut fault_events_total = 0u64;
        for seed in [1u64, 2, 3] {
            let plan = FaultPlan::seeded(seed)
                .with_drop(0.2)
                .with_delay(0.3, Duration::from_millis(2))
                .with_duplicate(0.2);
            let faulted = register_distributed(&reg, &format!("faulted-{seed}"), Some(plan));

            let mut rng = TensorRng::new(seed ^ 0xBEEF);
            let seqs: Vec<Vec<f32>> = (0..3)
                .map(|_| rng.uniform(&[6], -1.5, 1.5).as_f32_slice().unwrap().to_vec())
                .collect();
            // Concurrent faulted streams; each compared to a private
            // fault-free stream decoding the same sequence alone.
            std::thread::scope(|scope| {
                for (i, seq) in seqs.iter().enumerate() {
                    let (faulted, reference) = (&faulted, &reference);
                    scope.spawn(move || {
                        let got = drive(&faulted.open_stream().unwrap(), seq);
                        let want = drive(&reference.open_stream().unwrap(), seq);
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "faults perturbed stream {i} (seed {seed})"
                        );
                    });
                }
            });

            let a = faulted.metrics().aggregate;
            assert_eq!(a.streams_retired, 3);
            assert_eq!(a.failed, 0);
            fault_events_total += a.fault_events;
        }
        assert!(fault_events_total > 0, "no faults fired across the sweep");
    }

    trait Bits {
        fn to_bits(&self) -> Vec<u32>;
    }
    impl Bits for Vec<f32> {
        fn to_bits(&self) -> Vec<u32> {
            self.iter().map(|v| v.to_bits()).collect()
        }
    }
}
