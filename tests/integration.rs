//! Cross-crate integration tests: end-to-end scenarios spanning graph
//! construction, autodiff, partitioning, and the session runtime.

use dcf::ml::{dynamic_rnn, static_rnn, LstmCell};
use dcf::prelude::*;
use std::collections::HashMap;

#[test]
fn lstm_training_reduces_loss_end_to_end() {
    let (seq, batch, input, hidden) = (6usize, 2usize, 3usize, 4usize);
    let mut g = GraphBuilder::new();
    let mut rng = TensorRng::new(77);
    let cell = LstmCell::new(&mut g, "lstm", input, hidden, &mut rng);
    let w_out = g.variable("w_out", rng.uniform(&[hidden, 1], -0.5, 0.5));
    let x = g.constant(rng.uniform(&[seq, batch, input], -1.0, 1.0));
    let h0 = g.constant(Tensor::zeros(DType::F32, &[batch, hidden]));
    let c0 = g.constant(Tensor::zeros(DType::F32, &[batch, hidden]));
    let rnn = dynamic_rnn(&mut g, &cell, x, h0, c0, WhileOptions::default()).unwrap();
    let pred = g.matmul(rnn.h, w_out).unwrap();
    let target = g.constant(Tensor::ones(&[batch, 1]));
    let diff = g.sub(pred, target).unwrap();
    let sq = g.square(diff).unwrap();
    let loss = g.reduce_mean(sq).unwrap();
    let mut params = cell.params();
    params.push(w_out);
    let updates = dcf::ml::sgd_step(&mut g, loss, &params, 0.1).unwrap();

    let sess = Session::local(g.finish().unwrap()).unwrap();
    let mut fetches = vec![loss];
    fetches.extend(&updates);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..30 {
        let out = sess.eval(&HashMap::new(), &fetches).unwrap();
        last = out[0].scalar_as_f32().unwrap();
        if first.is_none() {
            first = Some(last);
        }
    }
    let first = first.unwrap();
    assert!(last < first * 0.5, "loss did not halve: {first} -> {last}");
}

#[test]
fn distributed_training_step_matches_local() {
    // The same LSTM training step computed locally and with the loop body
    // partitioned onto a second machine must produce identical parameter
    // updates.
    let build = |remote: bool| {
        let mut g = GraphBuilder::new();
        let mut rng = TensorRng::new(5);
        let w = g.variable("w", rng.uniform(&[4, 4], -0.5, 0.5));
        let x = g.constant(rng.uniform(&[2, 4], -1.0, 1.0));
        let i0 = g.scalar_i64(0);
        let lim = g.scalar_i64(4);
        let outs = g
            .while_loop(
                &[i0, x],
                |g, v| g.less(v[0], lim),
                |g, v| {
                    let one = g.scalar_i64(1);
                    let y = if remote {
                        g.with_device("/machine:1/cpu:0", |g| {
                            let z = g.matmul(v[1], w)?;
                            g.tanh(z)
                        })?
                    } else {
                        let z = g.matmul(v[1], w)?;
                        g.tanh(z)?
                    };
                    let y = g.with_device("/machine:0/cpu:0", |g| g.identity(y))?;
                    Ok(vec![g.add(v[0], one)?, y])
                },
                WhileOptions::default(),
            )
            .unwrap();
        let sq = g.square(outs[1]).unwrap();
        let loss = g.reduce_sum(sq).unwrap();
        let grads = dcf::autodiff::gradients(&mut g, loss, &[w]).unwrap();
        (g, grads[0])
    };
    let mut results = Vec::new();
    for remote in [false, true] {
        let (g, grad) = build(remote);
        let mut cluster = Cluster::new();
        cluster.add_device(0, DeviceProfile::cpu());
        cluster.add_device(1, DeviceProfile::cpu());
        let sess =
            Session::new(g.finish().unwrap(), cluster, SessionOptions::functional()).unwrap();
        results.push(sess.eval(&HashMap::new(), &[grad]).unwrap().remove(0));
    }
    assert!(results[0].allclose(&results[1], 1e-5), "distributed gradient differs from local");
}

#[test]
fn dynamic_rnn_gradients_match_static_unrolling() {
    let (seq, batch, input, hidden) = (5usize, 2usize, 3usize, 4usize);
    let grad_of = |dynamic: bool| -> Tensor {
        let mut g = GraphBuilder::new();
        let mut rng = TensorRng::new(19);
        let cell = LstmCell::new(&mut g, "lstm", input, hidden, &mut rng);
        let x = g.constant(rng.uniform(&[seq, batch, input], -1.0, 1.0));
        let h0 = g.constant(Tensor::zeros(DType::F32, &[batch, hidden]));
        let c0 = g.constant(Tensor::zeros(DType::F32, &[batch, hidden]));
        let rnn = if dynamic {
            dynamic_rnn(&mut g, &cell, x, h0, c0, WhileOptions::default()).unwrap()
        } else {
            static_rnn(&mut g, &cell, x, h0, c0, seq).unwrap()
        };
        let sq = g.square(rnn.outputs).unwrap();
        let loss = g.reduce_sum(sq).unwrap();
        let grads = dcf::autodiff::gradients(&mut g, loss, &[cell.w]).unwrap();
        let sess = Session::local(g.finish().unwrap()).unwrap();
        sess.eval(&HashMap::new(), &[grads[0]]).unwrap().remove(0)
    };
    let dynamic = grad_of(true);
    let fixed = grad_of(false);
    assert!(dynamic.allclose(&fixed, 1e-3), "loop gradient must equal unrolled gradient");
}

#[test]
fn session_runs_are_repeatable_and_isolated() {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", DType::F32);
    let i0 = g.scalar_i64(0);
    let lim = g.scalar_i64(8);
    let outs = g
        .while_loop(
            &[i0, x],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                let half = g.scalar_f32(0.5);
                let next = g.mul(v[1], half)?;
                Ok(vec![g.add(v[0], one)?, next])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let sess = Session::local(g.finish().unwrap()).unwrap();
    for i in 0..5 {
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), Tensor::scalar_f32(256.0 + i as f32));
        let out = sess.eval(&feeds, &[outs[1]]).unwrap();
        let expect = (256.0 + i as f32) / 256.0;
        assert!((out[0].scalar_as_f32().unwrap() - expect).abs() < 1e-5);
    }
}

#[test]
fn memory_swapping_preserves_values() {
    // Swap on/off must be value-identical; only memory behavior differs.
    let run_with = |swap: bool| -> Tensor {
        let mut g = GraphBuilder::new();
        let mut rng = TensorRng::new(3);
        let cell = LstmCell::new(&mut g, "lstm", 4, 4, &mut rng);
        let x = g.constant(rng.uniform(&[12, 4, 4], -1.0, 1.0));
        let h0 = g.constant(Tensor::zeros(DType::F32, &[4, 4]));
        let c0 = g.constant(Tensor::zeros(DType::F32, &[4, 4]));
        let rnn = dynamic_rnn(
            &mut g,
            &cell,
            x,
            h0,
            c0,
            WhileOptions { swap_memory: swap, ..Default::default() },
        )
        .unwrap();
        let sq = g.square(rnn.outputs).unwrap();
        let loss = g.reduce_sum(sq).unwrap();
        let grads = dcf::autodiff::gradients(&mut g, loss, &[cell.w]).unwrap();
        let mut cluster = Cluster::new();
        cluster.add_device(0, DeviceProfile::gpu_k40().with_time_scale(0.0).with_shape_scale(8));
        let sess = Session::new(
            g.finish().unwrap(),
            cluster,
            SessionOptions {
                executor: dcf::exec::ExecutorOptions {
                    swap_threshold: 0.0, // swap everything eligible
                    min_swap_bytes: 1,
                    ..Default::default()
                },
                network: NetworkModel::disabled(),
                ..Default::default()
            },
        )
        .unwrap();
        sess.eval(&HashMap::new(), &[grads[0]]).unwrap().remove(0)
    };
    let with = run_with(true);
    let without = run_with(false);
    assert!(with.allclose(&without, 1e-5), "swapping changed gradient values");
}

#[test]
fn moe_conditional_execution_trains_distributed() {
    let mut cluster = Cluster::new();
    cluster.add_device(0, DeviceProfile::cpu());
    cluster.add_device(1, DeviceProfile::cpu());
    let mut g = GraphBuilder::new();
    let mut rng = TensorRng::new(2);
    let moe = dcf::ml::MoeLayer::new(
        &mut g,
        "moe",
        3,
        8,
        2,
        vec![Some("/machine:0/cpu:0".into()), Some("/machine:1/cpu:0".into())],
        &mut rng,
    );
    let x = g.constant(rng.uniform(&[4, 3], -1.0, 1.0));
    let y = moe.apply(&mut g, x).unwrap();
    let sq = g.square(y).unwrap();
    let loss = g.reduce_mean(sq).unwrap();
    let updates = dcf::ml::sgd_step(&mut g, loss, &moe.params(), 0.1).unwrap();
    let sess = Session::new(g.finish().unwrap(), cluster, SessionOptions::functional()).unwrap();
    let mut fetches = vec![loss];
    fetches.extend(&updates);
    let mut losses = Vec::new();
    for _ in 0..10 {
        let out = sess.eval(&HashMap::new(), &fetches).unwrap();
        losses.push(out[0].scalar_as_f32().unwrap());
    }
    assert!(losses.iter().all(|l| l.is_finite()));
    assert!(losses.last().unwrap() <= &losses[0], "{losses:?}");
}

#[test]
fn higher_order_functions_compose_with_gradients() {
    // foldl(scan(...)) end-to-end with gradients.
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", DType::F32);
    let init = g.scalar_f32(0.0);
    let prefix = g.scan(|g, a, e| g.add(a, e), x, init, WhileOptions::default()).unwrap();
    let init2 = g.scalar_f32(1.0);
    let product = g
        .foldl(
            |g, a, e| {
                let one = g.scalar_f32(1.0);
                let e1 = g.add(e, one)?;
                g.mul(a, e1)
            },
            prefix,
            init2,
            WhileOptions::default(),
        )
        .unwrap();
    let grads = dcf::autodiff::gradients(&mut g, product, &[x]).unwrap();
    let sess = Session::local(g.finish().unwrap()).unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), Tensor::from_vec_f32(vec![0.1, 0.2, 0.3], &[3]).unwrap());
    let out = sess.eval(&feeds, &[product, grads[0]]).unwrap();
    // prefix = [0.1, 0.3, 0.6]; product = 1.1 * 1.3 * 1.6.
    assert!((out[0].scalar_as_f32().unwrap() - 1.1 * 1.3 * 1.6).abs() < 1e-4);
    // Numeric check on one coordinate.
    let eval = |v: Vec<f32>| -> f32 {
        let o = sess
            .eval(
                &{
                    let mut f = HashMap::new();
                    f.insert("x".to_string(), Tensor::from_vec_f32(v, &[3]).unwrap());
                    f
                },
                &[product],
            )
            .unwrap();
        o[0].scalar_as_f32().unwrap()
    };
    let eps = 1e-2;
    let numeric = (eval(vec![0.1 + eps, 0.2, 0.3]) - eval(vec![0.1 - eps, 0.2, 0.3])) / (2.0 * eps);
    let analytic = out[1].as_f32_slice().unwrap()[0];
    assert!((analytic - numeric).abs() < 0.05, "{analytic} vs {numeric}");
}

/// Deterministic mirror of the `proptest_optimizer` suite (which needs the
/// opt-in `proptest` feature): a grid of programs with elementwise chains,
/// duplicated subexpressions, nested while/cond, and variable state must
/// produce bit-identical results with and without graph optimization.
#[test]
fn optimizer_grid_bit_identical_with_and_without() {
    struct Case {
        chain: &'static [u8],
        duplicate: bool,
        trips: i64,
        alternating: bool,
    }
    let cases = [
        Case { chain: &[], duplicate: false, trips: 0, alternating: false },
        Case { chain: &[0, 1], duplicate: false, trips: 1, alternating: false },
        Case { chain: &[0, 1, 2], duplicate: true, trips: 3, alternating: true },
        Case { chain: &[3, 0, 4, 1], duplicate: true, trips: 5, alternating: false },
        Case { chain: &[2, 2, 2], duplicate: false, trips: 4, alternating: true },
        Case { chain: &[1], duplicate: true, trips: 0, alternating: false },
    ];
    let build = |c: &Case| -> (dcf::graph::Graph, Vec<TensorRef>) {
        let mut g = GraphBuilder::new();
        let x0 = g.placeholder("x", DType::F32);
        let scale = g.scalar_f32(0.8);
        let offset = g.scalar_f32(-0.4);
        let apply_chain = |g: &mut GraphBuilder, mut t: TensorRef| -> TensorRef {
            for op in c.chain {
                t = match op {
                    0 => g.mul(t, scale).unwrap(),
                    1 => g.add(t, offset).unwrap(),
                    2 => g.tanh(t).unwrap(),
                    3 => g.relu(t).unwrap(),
                    _ => g.neg(t).unwrap(),
                };
            }
            t
        };
        let chain_a = apply_chain(&mut g, x0);
        let root_out = if c.duplicate {
            let chain_b = apply_chain(&mut g, x0);
            g.add(chain_a, chain_b).unwrap()
        } else {
            chain_a
        };
        let i0 = g.scalar_i64(0);
        let lim = g.scalar_i64(c.trips);
        let alternating = c.alternating;
        let outs = g
            .while_loop(
                &[i0, root_out],
                |g, v| g.less(v[0], lim),
                |g, v| {
                    let one = g.scalar_i64(1);
                    let scaled = g.mul(v[1], scale)?;
                    let shifted = g.add(scaled, offset)?;
                    let squashed = g.tanh(shifted)?;
                    let next = if alternating {
                        let half_c = g.scalar_f32(0.5);
                        let fi = g.cast(v[0], DType::F32)?;
                        let half = g.mul(fi, half_c)?;
                        let trunc = g.cast(half, DType::I64)?;
                        let back = g.cast(trunc, DType::F32)?;
                        let even = g.equal(half, back)?;
                        let stepped = g.cond(
                            even,
                            |g| Ok(vec![g.add(squashed, offset)?]),
                            |g| Ok(vec![g.sub(squashed, offset)?]),
                        )?;
                        stepped[0]
                    } else {
                        squashed
                    };
                    Ok(vec![g.add(v[0], one)?, next])
                },
                WhileOptions::default(),
            )
            .unwrap();
        let w = g.variable("w", Tensor::scalar_f32(0.25));
        let upd = g.assign_add(w, outs[1]).unwrap();
        (g.finish().unwrap(), vec![root_out, outs[1], upd])
    };
    // A GPU-profile device (zero time scale keeps kernels synchronous and
    // fast) so the memory-plan axis is exercised: CPU partitions never
    // charge memory and are never planned.
    let run = |c: &Case, opt: OptLevel, plan: MemPlan| -> Vec<Tensor> {
        let (graph, fetches) = build(c);
        let mut cluster = Cluster::new();
        cluster.add_device(0, DeviceProfile::gpu_k40().with_time_scale(0.0));
        let sess = Session::new(
            graph,
            cluster,
            SessionOptions::functional().with_optimization(opt).with_memory_plan(plan),
        )
        .unwrap();
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), Tensor::scalar_f32(0.6));
        // Two steps: the second observes variable state the first wrote.
        let mut out = sess.eval(&feeds, &fetches).unwrap();
        out.extend(sess.eval(&feeds, &fetches).unwrap());
        out
    };
    for (i, c) in cases.iter().enumerate() {
        // Full sweep of the optimizer and memory-plan escape hatches
        // (DCF_OPT=none / DCF_MEMPLAN=off equivalents): all four
        // combinations must be bit-identical.
        let baseline = run(c, OptLevel::None, MemPlan::Off);
        for (opt, plan) in [
            (OptLevel::Standard, MemPlan::On),
            (OptLevel::Standard, MemPlan::Off),
            (OptLevel::None, MemPlan::On),
        ] {
            let variant = run(c, opt, plan);
            assert_eq!(variant.len(), baseline.len());
            for (j, (a, b)) in variant.iter().zip(&baseline).enumerate() {
                assert!(
                    a.value_eq(b),
                    "case {i} fetch {j} diverged under ({opt:?}, {plan:?}): {a:?} vs {b:?}"
                );
            }
        }
    }
}
