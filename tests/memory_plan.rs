//! End-to-end tests for the static memory-planning pass (PR 8).
//!
//! Planning is an accounting optimization: eligible root-context compute
//! outputs on a GPU-profile device share one up-front region reservation
//! per step instead of opening one allocator charge per kernel. These
//! tests pin down the three user-visible guarantees:
//!
//! 1. Planning never increases peak memory and strictly reduces allocator
//!    round-trips on an allocation-heavy graph.
//! 2. Results are bit-identical with the plan on or off, at every
//!    optimizer level (the plan touches accounting, never values).
//! 3. Concurrent client steps each acquire their own region — regions are
//!    per-step, never shared, and every charge is returned (no leaks, no
//!    over-frees).

use dcf::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A chain of `depth` matmuls off a statically-shaped placeholder. The
/// placeholder root keeps the constant folder away and matmuls are never
/// fused, so every link is a plannable compute output with static shape.
fn chain_graph(depth: usize) -> (dcf::graph::Graph, Vec<TensorRef>) {
    let mut b = GraphBuilder::new();
    let x = b.placeholder_shaped("x", DType::F32, &[32, 32]);
    let w = b.constant(Tensor::ones(&[32, 32]));
    let mut cur = x;
    let mut fetches = Vec::new();
    for _ in 0..depth {
        cur = b.matmul(cur, w).unwrap();
        fetches.push(cur);
    }
    (b.finish().unwrap(), fetches)
}

/// Charges can be returned from executor teardown a beat after `eval`
/// returns; wait for the allocator to drain before asserting on `in_use`.
fn drain(alloc: &dcf::device::TrackingAllocator) {
    for _ in 0..200 {
        if alloc.in_use() == 0 {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

/// A single-GPU cluster with synchronous (zero time-scale) kernels.
fn gpu_cluster() -> Cluster {
    let mut c = Cluster::new();
    c.add_device(0, DeviceProfile::gpu_k40().with_time_scale(0.0));
    c
}

fn gpu_session(graph: dcf::graph::Graph, opt: OptLevel, plan: MemPlan) -> Session {
    Session::new(
        graph,
        gpu_cluster(),
        SessionOptions::functional().with_optimization(opt).with_memory_plan(plan),
    )
    .unwrap()
}

fn feed() -> HashMap<String, Tensor> {
    let data: Vec<f32> = (0..32 * 32).map(|i| (i % 7) as f32 * 0.25 - 0.5).collect();
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), Tensor::from_vec_f32(data, &[32, 32]).unwrap());
    feeds
}

#[test]
fn plan_reduces_allocs_and_never_increases_peak() {
    // Fetching every link of the chain makes the unplanned path hold one
    // charge per link simultaneously at the end of each step (fetched
    // tokens live until the run completes), while the planned path backs
    // them all with the two-slot region.
    let steps = 8;
    let mut results = Vec::new();
    for plan in [MemPlan::Off, MemPlan::On] {
        let (graph, fetches) = chain_graph(8);
        let sess = gpu_session(graph, OptLevel::Standard, plan);
        for _ in 0..steps {
            sess.eval(&feed(), &fetches).unwrap();
            // Wait out executor teardown so one step's charges never
            // overlap the next step's in the peak reading.
            drain(sess.cluster().devices()[0].allocator());
        }
        let alloc = sess.cluster().devices()[0].allocator();
        assert_eq!(alloc.in_use(), 0, "all charges must be returned ({plan:?})");
        assert_eq!(alloc.over_frees(), 0, "accounting must balance ({plan:?})");
        results.push((plan, alloc.peak(), alloc.total_allocs()));
    }
    let (_, peak_off, allocs_off) = results[0];
    let (_, peak_on, allocs_on) = results[1];
    assert!(
        allocs_on < allocs_off,
        "plan must strictly reduce allocator round-trips: on={allocs_on} off={allocs_off}"
    );
    assert!(peak_on <= peak_off, "plan must not increase peak memory: on={peak_on} off={peak_off}");
}

#[test]
fn plan_stats_flow_into_optimize_stats() {
    let (graph, _) = chain_graph(6);
    let sess = gpu_session(graph, OptLevel::Standard, MemPlan::On);
    let stats = sess.optimize_stats().expect("Standard opt level records stats");
    assert!(stats.planned_bytes > 0, "stats: {stats:?}");
    assert!(stats.aliased_slots >= 1, "a 6-deep chain must alias: {stats:?}");

    let (graph, _) = chain_graph(6);
    let sess = gpu_session(graph, OptLevel::Standard, MemPlan::Off);
    let stats = sess.optimize_stats().expect("Standard opt level records stats");
    assert_eq!(stats.planned_bytes, 0, "plan off must not plan: {stats:?}");
    assert_eq!(stats.aliased_slots, 0);
}

#[test]
fn results_bit_identical_across_plan_and_opt_levels() {
    let run = |opt: OptLevel, plan: MemPlan| -> Vec<Tensor> {
        let (graph, fetches) = chain_graph(4);
        let sess = gpu_session(graph, opt, plan);
        // Fetch an intermediate and the final output.
        sess.eval(&feed(), &[fetches[1], fetches[3]]).unwrap()
    };
    let baseline = run(OptLevel::None, MemPlan::Off);
    for (opt, plan) in [
        (OptLevel::Standard, MemPlan::On),
        (OptLevel::Standard, MemPlan::Off),
        (OptLevel::None, MemPlan::On),
    ] {
        let variant = run(opt, plan);
        assert_eq!(variant.len(), baseline.len());
        for (i, (a, b)) in variant.iter().zip(&baseline).enumerate() {
            assert!(a.value_eq(b), "fetch {i} diverged under ({opt:?}, {plan:?})");
        }
    }
}

#[test]
fn concurrent_steps_each_acquire_their_own_region() {
    let (graph, fetches) = chain_graph(6);
    let sess = Arc::new(gpu_session(graph, OptLevel::Standard, MemPlan::On));
    let last = *fetches.last().unwrap();

    // Calibrate the deterministic per-step allocation count with one
    // sequential step (synchronous kernels make this stable).
    sess.eval(&feed(), &[last]).unwrap();
    let alloc = sess.cluster().devices()[0].allocator();
    let per_step = alloc.total_allocs();
    assert!(per_step >= 1, "a planned step must at least acquire its region");

    let threads = 4;
    let steps_per_thread = 5;
    let expected = sess.eval(&feed(), &[last]).unwrap();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let sess = Arc::clone(&sess);
            let expected = &expected;
            s.spawn(move || {
                for _ in 0..steps_per_thread {
                    let out = sess.eval(&feed(), &[last]).unwrap();
                    assert!(out[0].value_eq(&expected[0]), "concurrent step diverged");
                }
            });
        }
    });

    let alloc = sess.cluster().devices()[0].allocator();
    let total_steps = 2 + threads * steps_per_thread;
    assert_eq!(
        alloc.total_allocs(),
        per_step * total_steps as u64,
        "each step must acquire its own region reservation, never share one"
    );
    drain(alloc);
    assert_eq!(alloc.in_use(), 0, "all regions and charges must be returned");
    assert_eq!(alloc.over_frees(), 0);
}
