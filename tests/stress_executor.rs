//! Executor stress tests (satellite of the hot-path overhaul).
//!
//! Meant to be run in release mode (`cargo test --release --test
//! stress_executor`); the iteration counts shrink automatically under
//! debug builds so plain `cargo test -q` stays fast. Covers:
//!
//! * nested while loops over randomized iteration counts, run at
//!   `workers` = 1 / 2 / 8, asserting **value-identical** results and an
//!   **identical `ops_executed` count** (a double-scheduled node would
//!   inflate the counter at higher worker counts);
//! * concurrent `Session::run` calls on sessions sharing one
//!   `ResourceManager`, asserting no deadlock and correct values.

use dcf_device::{Device, DeviceId, DeviceProfile, Tracer};
use dcf_exec::{ExecGraph, Executor, ExecutorOptions, InMemoryRendezvous, ResourceManager};
use dcf_graph::{Graph, GraphBuilder, TensorRef, WhileOptions};
use dcf_runtime::{Cluster, Session, SessionOptions};
use dcf_tensor::TensorRng;
use std::collections::HashMap;
use std::sync::Arc;

#[cfg(debug_assertions)]
const SEEDS: u64 = 3;
#[cfg(not(debug_assertions))]
const SEEDS: u64 = 12;

#[cfg(debug_assertions)]
const MAX_TRIPS: i64 = 8;
#[cfg(not(debug_assertions))]
const MAX_TRIPS: i64 = 40;

/// A doubly nested loop with randomized trip counts and a varying window:
/// outer runs `outer` trips; each trip spawns a child frame running
/// `inner` trips, each adding `outer_index + 1` into the accumulator.
/// Expected fetch: `inner * outer * (outer + 1) / 2`.
fn nested_graph(outer: i64, inner: i64, parallel: usize) -> (Graph, TensorRef) {
    let mut g = GraphBuilder::new();
    let i0 = g.scalar_i64(0);
    let acc0 = g.scalar_i64(0);
    let olim = g.scalar_i64(outer);
    let ilim = g.scalar_i64(inner);
    let outs = g
        .while_loop(
            &[i0, acc0],
            |g, v| g.less(v[0], olim),
            |g, v| {
                let one = g.scalar_i64(1);
                let next_i = g.add(v[0], one)?;
                let j0 = g.scalar_i64(0);
                let inner_outs = g.while_loop(
                    &[j0, v[1]],
                    |g, w| g.less(w[0], ilim),
                    |g, w| {
                        let one = g.scalar_i64(1);
                        // `next_i` is a loop constant of the inner frame.
                        Ok(vec![g.add(w[0], one)?, g.add(w[1], next_i)?])
                    },
                    WhileOptions { parallel_iterations: parallel, ..Default::default() },
                )?;
                Ok(vec![next_i, inner_outs[1]])
            },
            WhileOptions { parallel_iterations: parallel, ..Default::default() },
        )
        .expect("nested while_loop should build");
    (g.finish().expect("graph should validate"), outs[1])
}

fn executor_for(graph: Graph, workers: usize) -> Executor {
    let eg = ExecGraph::local(Arc::new(graph));
    let device = Device::new(DeviceId(0), 0, DeviceProfile::cpu(), Tracer::new());
    Executor::new(
        eg,
        device,
        ResourceManager::new(),
        Arc::new(InMemoryRendezvous::new()),
        ExecutorOptions { workers, ..Default::default() },
    )
}

/// Randomized nested loops must produce bit-identical values and identical
/// activation counts regardless of the worker count.
#[test]
fn nested_loops_identical_across_worker_counts() {
    let mut rng = TensorRng::new(0xdcf_57e5);
    for _ in 0..SEEDS {
        let outer = 1 + rng.sample_index(MAX_TRIPS as usize) as i64;
        let inner = 1 + rng.sample_index(MAX_TRIPS as usize) as i64;
        let parallel = 1 + rng.sample_index(32);
        let expected = inner * outer * (outer + 1) / 2;

        let mut reference: Option<(i64, u64)> = None;
        for workers in [1usize, 2, 8] {
            let (graph, fetch) = nested_graph(outer, inner, parallel);
            let exec = executor_for(graph, workers);
            // Several runs per executor: reuse must not corrupt state.
            for _ in 0..3 {
                let out = exec.run(&HashMap::new(), &[fetch]).unwrap_or_else(|e| {
                    panic!("outer={outer} inner={inner} workers={workers}: {e}")
                });
                let got = out.values[0].scalar_as_i64().expect("i64 fetch");
                assert_eq!(
                    got, expected,
                    "outer={outer} inner={inner} parallel={parallel} workers={workers}"
                );
                match reference {
                    None => reference = Some((got, out.ops_executed)),
                    Some((v, ops)) => {
                        assert_eq!(got, v, "value diverged at workers={workers}");
                        assert_eq!(
                            out.ops_executed, ops,
                            "activation count diverged at workers={workers} \
                             (double-schedule or lost op)"
                        );
                    }
                }
            }
        }
    }
}

/// Many sessions sharing one `ResourceManager`, each run concurrently from
/// its own thread several times. Exercises the executor's run setup and
/// teardown under contention; a deadlock here hangs the test.
#[test]
fn concurrent_sessions_share_resources() {
    let resources = ResourceManager::new();
    let rounds = if cfg!(debug_assertions) { 3 } else { 10 };
    let sessions: Vec<(Session, TensorRef, i64)> = (0..4)
        .map(|k| {
            let outer = 3 + k as i64;
            let inner = 4;
            let (graph, fetch) = nested_graph(outer, inner, 8);
            let mut options = SessionOptions::functional();
            options.executor.workers = 4;
            let sess =
                Session::new_shared(graph, Cluster::single_cpu(), options, resources.clone())
                    .expect("session should build");
            (sess, fetch, inner * outer * (outer + 1) / 2)
        })
        .collect();

    std::thread::scope(|scope| {
        for (sess, fetch, expected) in &sessions {
            scope.spawn(move || {
                for _ in 0..rounds {
                    let out = sess
                        .eval(&HashMap::new(), std::slice::from_ref(fetch))
                        .expect("concurrent run should succeed");
                    assert_eq!(out[0].scalar_as_i64().expect("i64 fetch"), *expected);
                }
            });
        }
    });
}
