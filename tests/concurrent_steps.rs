//! Concurrent multi-client steps on one shared session.
//!
//! These tests pin the invariants behind the cross-step state-clobbering
//! fix: per-run transients (stacks, TensorArrays, gradient maps) are torn
//! down per step, step-stats collectors are routed per step, and the
//! network layer's bookkeeping is keyed by step — so N client threads can
//! drive one session simultaneously, traced or not, and each run behaves
//! exactly as it would alone.

use dcf::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

const THREADS: usize = 4;
const RUNS_PER_THREAD: usize = 6;

/// A while-loop gradient graph whose scale is fed: `x` runs 4 iterations
/// of `tanh(x · w)`, the loss is `sum((s·x_out)²)`, and we fetch both the
/// loss and `d loss / d w`. Loop gradients exercise the stack-based
/// backprop state that the old `clear_transients` wiped globally.
fn loop_grad_graph() -> (GraphBuilder, TensorRef, TensorRef) {
    let mut g = GraphBuilder::new();
    let mut rng = TensorRng::new(42);
    let w = g.variable("w", rng.uniform(&[4, 4], -0.5, 0.5));
    let x = g.constant(rng.uniform(&[2, 4], -1.0, 1.0));
    let s = g.placeholder("s", DType::F32);
    let i0 = g.scalar_i64(0);
    let lim = g.scalar_i64(4);
    let outs = g
        .while_loop(
            &[i0, x],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                let z = g.matmul(v[1], w)?;
                let y = g.tanh(z)?;
                Ok(vec![g.add(v[0], one)?, y])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let scaled = g.mul(outs[1], s).unwrap();
    let sq = g.square(scaled).unwrap();
    let loss = g.reduce_sum(sq).unwrap();
    let grads = dcf::autodiff::gradients(&mut g, loss, &[w]).unwrap();
    (g, loss, grads[0])
}

fn feed_for(thread: usize) -> HashMap<String, Tensor> {
    let mut feeds = HashMap::new();
    feeds.insert("s".to_string(), Tensor::scalar_f32(0.5 + thread as f32 * 0.75));
    feeds
}

#[test]
fn concurrent_mixed_runs_match_serial_bit_for_bit() {
    let (g, loss, grad) = loop_grad_graph();
    // A (fast-simulated) GPU device so Full traces carry stream-kernel
    // events — the per-step routing under test.
    let mut cluster = Cluster::new();
    cluster.add_device(0, DeviceProfile::gpu_k40().with_time_scale(0.01));
    let sess = Session::new(g.finish().unwrap(), cluster, SessionOptions::functional()).unwrap();
    let fetches = [loss, grad];

    // Serial baselines, one per thread's feed, plus the kernel count a
    // traced run records when it has the session to itself.
    let mut expected = Vec::new();
    for t in 0..THREADS {
        expected.push(sess.eval(&feed_for(t), &fetches).unwrap());
    }
    let (serial_result, serial_meta) =
        sess.run(&RunOptions::traced(TraceLevel::Full), &feed_for(0), &fetches);
    serial_result.unwrap();
    let serial_stats = serial_meta.step_stats.expect("trace requested");
    let serial_kernels: usize = serial_stats.devices.iter().map(|d| d.kernel_stats.len()).sum();
    assert!(serial_kernels > 0, "Full trace must record kernels");
    let serial_nodes: usize = serial_stats.devices.iter().map(|d| d.node_stats.len()).sum();

    // N threads × M runs, every other run traced at Full. Each result must
    // be bit-identical to the serial baseline for the same feed, and each
    // traced run's stats must look exactly like a solo traced run — no
    // missing events (stolen by a peer) and no extra ones (leaked in).
    let steps: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sess = &sess;
            let expected = &expected[t];
            let steps = &steps;
            scope.spawn(move || {
                for r in 0..RUNS_PER_THREAD {
                    let traced = r % 2 == 1;
                    let opts = if traced {
                        RunOptions::traced(TraceLevel::Full)
                    } else {
                        RunOptions::default()
                    };
                    let (out, meta) = sess.run(&opts, &feed_for(t), &fetches);
                    let out = out.unwrap();
                    for (got, want) in out.iter().zip(expected) {
                        assert!(
                            got.allclose(want, 0.0),
                            "thread {t} run {r}: concurrent result differs from serial"
                        );
                    }
                    if traced {
                        let stats = meta.step_stats.expect("trace requested");
                        let kernels: usize =
                            stats.devices.iter().map(|d| d.kernel_stats.len()).sum();
                        let nodes: usize = stats.devices.iter().map(|d| d.node_stats.len()).sum();
                        assert_eq!(
                            kernels, serial_kernels,
                            "thread {t} run {r}: per-step kernel stats interleaved"
                        );
                        assert_eq!(
                            nodes, serial_nodes,
                            "thread {t} run {r}: per-step node stats interleaved"
                        );
                    } else {
                        assert!(meta.step_stats.is_none(), "no stats unless requested");
                    }
                    assert!(meta.step > 0, "metadata must carry the step id");
                    steps.lock().unwrap().push(meta.step);
                }
            });
        }
    });

    // Every step tore down exactly its own state; the session as a whole
    // leaked nothing.
    let steps = steps.into_inner().unwrap();
    assert_eq!(steps.len(), THREADS * RUNS_PER_THREAD);
    for step in steps {
        assert!(sess.quiescent_step(step), "step {step} left state behind");
    }
    assert!(sess.quiescent(), "session leaked rendezvous or network state");
    assert_eq!(
        sess.resources().transient_count(),
        0,
        "per-run transients must not outlive their steps"
    );
}

#[test]
fn aborting_one_step_leaves_concurrent_steps_untouched() {
    // The loop limit is fed: one client hangs on a huge limit under a
    // short timeout while the others run small limits to completion.
    let mut g = GraphBuilder::new();
    let lim = g.placeholder("lim", DType::I64);
    let init = g.scalar_i64(0);
    let outs = g
        .while_loop(
            &[init],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                Ok(vec![g.add(v[0], one)?])
            },
            WhileOptions::default(),
        )
        .unwrap();
    let fetch = outs[0];
    let sess = Session::local(g.finish().unwrap()).unwrap();

    let sess = &sess;
    std::thread::scope(|scope| {
        let aborter = scope.spawn(move || {
            let mut feeds = HashMap::new();
            feeds.insert("lim".to_string(), Tensor::scalar_i64(i64::MAX));
            let opts = RunOptions::default().with_timeout(Duration::from_millis(30));
            sess.run(&opts, &feeds, &[fetch])
        });
        // Healthy clients keep completing while the aborter spins and dies.
        for t in 0..3 {
            scope.spawn(move || {
                for _ in 0..5 {
                    let mut feeds = HashMap::new();
                    feeds.insert("lim".to_string(), Tensor::scalar_i64(40 + t));
                    let out = sess.eval(&feeds, &[fetch]).unwrap();
                    assert_eq!(out[0].scalar_as_i64().unwrap(), 40 + t);
                }
            });
        }
        let (result, meta) = aborter.join().unwrap();
        let err = result.unwrap_err();
        assert!(
            matches!(err, dcf::exec::ExecError::DeadlineExceeded { .. }),
            "unexpected abort error: {err}"
        );
        // The aborted step's own state must be fully reclaimed even while
        // its peers are still mid-flight.
        assert!(sess.quiescent_step(meta.step), "aborted step leaked state");
    });
    assert!(sess.quiescent(), "abort left the session non-quiescent");
}

#[test]
fn admission_limit_queues_fifo_and_preserves_results() {
    let (g, loss, grad) = loop_grad_graph();
    let mut cluster = Cluster::new();
    cluster.add_device(0, DeviceProfile::cpu());
    let sess = Session::new(
        g.finish().unwrap(),
        cluster,
        SessionOptions::functional().with_max_concurrent_steps(2),
    )
    .unwrap();
    let fetches = [loss, grad];
    let expected: Vec<_> =
        (0..THREADS).map(|t| sess.eval(&feed_for(t), &fetches).unwrap()).collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sess = &sess;
            let expected = &expected[t];
            scope.spawn(move || {
                for _ in 0..RUNS_PER_THREAD {
                    let out = sess.eval(&feed_for(t), &fetches).unwrap();
                    for (got, want) in out.iter().zip(expected) {
                        assert!(got.allclose(want, 0.0), "admission-limited run differs");
                    }
                }
            });
        }
    });
    assert!(sess.quiescent());
}

#[test]
fn zero_admission_limit_is_a_structured_error() {
    let mut g = GraphBuilder::new();
    let x = g.scalar_f32(1.0);
    let y = g.scalar_f32(2.0);
    let z = g.add(x, y).unwrap();
    let mut cluster = Cluster::new();
    cluster.add_device(0, DeviceProfile::cpu());
    let sess = Session::new(
        g.finish().unwrap(),
        cluster,
        SessionOptions::functional().with_max_concurrent_steps(0),
    )
    .unwrap();
    let (result, meta) = sess.run(&RunOptions::default(), &HashMap::new(), &[z]);
    let err = result.unwrap_err();
    assert!(
        matches!(err, dcf::exec::ExecError::InvalidConfig(_)),
        "expected InvalidConfig, got: {err}"
    );
    assert_eq!(meta.step, 0, "rejected runs never allocate a step");
    assert_eq!(meta.abort_reason.as_deref(), Some(err.to_string().as_str()));
}
