//! Integration tests for the replica router behind the `ModelHandle` API.
//!
//! Three properties carry the tier:
//!
//! * **Routing** — power-of-two-choices dispatch must actually prefer the
//!   less-loaded replica: traffic fired while one replica's queue is
//!   occupied has to land on the idle one.
//! * **Transparency** — replication and scaling are invisible to clients:
//!   every response, through scale-up and scale-down transitions, is
//!   bit-identical to what a private single-replica session returns for
//!   the same feed.
//! * **Self-healing** (`--features faultinject`) — a replica whose steps
//!   keep aborting is evicted and replaced while the model keeps serving.

use dcf::graph::Graph;
use dcf::prelude::*;
use dcf::serve::ModelMetrics;
use std::collections::HashMap;
use std::time::Duration;

/// The same batch-linear loop model the batcher tests pin bit-identity
/// on: three loop iterations of `y = tanh(y · W)` over `x: [B, 4]`.
fn mlp_loop_model() -> (Graph, ModelSignature) {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", DType::F32);
    let w = g.constant(TensorRng::new(7).uniform(&[4, 4], -0.8, 0.8));
    let i0 = g.scalar_i64(0);
    let trips = g.scalar_i64(3);
    let outs = g
        .while_loop(
            &[i0, x],
            |g, v| g.less(v[0], trips),
            |g, v| {
                let one = g.scalar_i64(1);
                let h = g.matmul(v[1], w)?;
                let h = g.tanh(h)?;
                Ok(vec![g.add(v[0], one)?, h])
            },
            WhileOptions::default(),
        )
        .expect("while_loop builds");
    let sig = ModelSignature::new().feed("x", DType::F32, &[4]).fetch(outs[1]);
    (g.finish().expect("graph validates"), sig)
}

fn feed_rows(rows: usize, value: f32) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert("x".to_string(), Tensor::fill_f32(value, &[rows, 4]));
    m
}

/// The replica a response was served by, recovered from its batch tag
/// (`"mlp[r0]/batch-3"` → `"mlp[r0]"`).
fn replica_of(tag: &str) -> String {
    tag.split("/batch-").next().unwrap().to_string()
}

#[test]
fn p2c_routes_around_a_loaded_replica() {
    let (graph, sig) = mlp_loop_model();
    let reg = ModelRegistry::new();
    let handle = reg
        .register(
            "mlp",
            ModelSpec::local(graph, sig)
                .with_policy(BatchPolicy {
                    max_batch_size: 8,
                    // Long linger: a partial batch occupies its replica's
                    // queue for the whole window, so the load imbalance is
                    // stable while we fire the probe traffic.
                    max_queue_delay: Duration::from_millis(300),
                    ..BatchPolicy::default()
                })
                .with_replicas(2),
        )
        .unwrap();

    // Occupy one replica with a 4-row request that will linger...
    let occupant = handle.submit(Request::new(feed_rows(4, 0.5))).unwrap();
    // ...then probe with single-row requests. Each sees loads like
    // [4, 0] / [4, 1] / [4, 2]: strictly less-loaded, so every probe must
    // route to the idle replica no matter which pair order the hash picks.
    let probes: Vec<_> =
        (0..3).map(|i| handle.submit(Request::new(feed_rows(1, i as f32))).unwrap()).collect();

    let occupant_replica = replica_of(&occupant.wait().unwrap().tag);
    let probe_replicas: Vec<String> =
        probes.into_iter().map(|t| replica_of(&t.wait().unwrap().tag)).collect();
    for p in &probe_replicas {
        assert_ne!(
            *p, occupant_replica,
            "probe landed on the loaded replica (occupant on {occupant_replica})"
        );
    }

    let m: ModelMetrics = handle.metrics();
    assert!(m.instantiated);
    assert_eq!(m.replicas.len(), 2);
    assert_eq!(m.aggregate.served, 4);
    let mut served: Vec<u64> = m.replicas.iter().map(|r| r.snapshot.served).collect();
    served.sort();
    assert_eq!(served, vec![1, 3], "one replica took the occupant, the other all probes");
    assert_eq!(handle.replicas(), 2);
}

#[test]
fn scaling_transitions_stay_bit_identical_to_a_single_replica() {
    let (graph, sig) = mlp_loop_model();
    // Private single-replica reference: the builder is deterministic, so
    // its signature's fetch refs address the same nodes.
    let (ref_graph, ref_sig) = mlp_loop_model();
    let reference = Session::local(ref_graph).unwrap();

    let reg = ModelRegistry::new();
    // Thresholds sit between the two phases' queue-delay regimes: phase 1
    // (single-row requests against max_batch_size 2) always waits out the
    // 30ms linger, far above the 20ms scale-up trigger; phase 2 (full
    // 2-row batches) dispatches immediately, far below the 9ms scale-down
    // trigger even after log2-bucket rounding.
    let scaling = ScalingPolicy::autoscale(1, 3, 20.0, 9.0).with_cadence(6, 1);
    let handle = reg
        .register(
            "mlp",
            ModelSpec::local(graph, sig)
                .with_policy(BatchPolicy {
                    max_batch_size: 2,
                    max_queue_delay: Duration::from_millis(30),
                    ..BatchPolicy::default()
                })
                .with_scaling(scaling),
        )
        .unwrap();

    let check = |resp: &dcf::serve::Response, feeds: &HashMap<String, Tensor>| {
        let alone = reference.eval(feeds, &ref_sig.fetches).unwrap();
        assert!(
            resp.outputs[0].value_eq(&alone[0]),
            "replicated response differs from the single-replica reference"
        );
    };

    // Phase 1: sustained partial batches — every request eats the full
    // linger, the windowed p99 crosses the scale-up threshold, and the
    // set grows. Each response must still be the reference bits.
    for i in 0..16 {
        let feeds = feed_rows(1, i as f32 * 0.25 - 1.0);
        let resp = handle.serve(Request::new(feeds.clone())).unwrap();
        check(&resp, &feeds);
    }
    let grown = handle.metrics();
    assert!(grown.scale_ups >= 1, "sustained linger-bound p99 must scale up: {grown:?}");
    assert!(handle.replicas() > 1);

    // Phase 2: full-size batches dispatch without lingering — the
    // windowed p99 collapses and idle replicas retire, again without
    // perturbing a bit.
    for i in 0..20 {
        let feeds = feed_rows(2, i as f32 * 0.2 - 2.0);
        let resp = handle.serve(Request::new(feeds.clone())).unwrap();
        assert_eq!(resp.batch_rows, 2, "full batches must dispatch alone");
        check(&resp, &feeds);
    }
    let shrunk = handle.metrics();
    assert!(shrunk.scale_downs >= 1, "idle low-p99 replicas must scale down: {shrunk:?}");
    assert!(
        handle.replicas() < grown.replicas.len() + grown.scale_ups as usize,
        "replica count must have come back down"
    );
    assert_eq!(shrunk.evicted, 0, "healthy replicas are scaled away, never evicted");
    assert_eq!(
        shrunk.aggregate.served, 36,
        "retired replicas' counters must fold into the aggregate"
    );
}

#[cfg(feature = "faultinject")]
mod faults {
    //! Health eviction under injected faults: one replica's batched steps
    //! always fail (total transfer loss, no retries); it must be evicted
    //! and replaced while the model keeps serving.

    use super::*;
    use dcf::device::DeviceProfile;
    use dcf::runtime::{FaultPlan, RetryPolicy};

    /// Tanh on machine 1, loop control on machine 0: every batched step
    /// crosses the simulated network, which is where the plan bites.
    fn distributed_model() -> (Graph, ModelSignature) {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", DType::F32);
        let w = g.constant(TensorRng::new(7).uniform(&[4, 4], -0.8, 0.8));
        let i0 = g.scalar_i64(0);
        let trips = g.scalar_i64(3);
        let outs = g
            .while_loop(
                &[i0, x],
                |g, v| g.less(v[0], trips),
                |g, v| {
                    let one = g.scalar_i64(1);
                    let h = g.matmul(v[1], w)?;
                    let h = g.with_device("/machine:1/cpu:0", |g| g.tanh(h))?;
                    Ok(vec![g.add(v[0], one)?, h])
                },
                WhileOptions::default(),
            )
            .expect("while_loop builds");
        let sig = ModelSignature::new().feed("x", DType::F32, &[4]).fetch(outs[1]);
        (g.finish().expect("graph validates"), sig)
    }

    fn two_machines() -> Cluster {
        let mut c = Cluster::new();
        c.add_device(0, DeviceProfile::cpu());
        c.add_device(1, DeviceProfile::cpu());
        c
    }

    #[test]
    fn faulty_replica_is_evicted_and_replaced_while_serving() {
        let (graph, sig) = distributed_model();
        let mut spec = ModelSpec::local(graph, sig)
            .with_policy(BatchPolicy {
                max_batch_size: 4,
                max_queue_delay: Duration::from_millis(1),
                // No retries: a dropped transfer aborts the step at once,
                // so the sick replica racks up consecutive failures fast.
                run_options: RunOptions::default()
                    .with_retry(RetryPolicy { max_retries: 0, ..RetryPolicy::default() }),
                ..BatchPolicy::default()
            })
            .with_replicas(2)
            .with_scaling(ScalingPolicy::default().with_eviction_after(2))
            // Initial replica 0 loses every transfer; its replacement
            // (a fresh id past the override list) is healthy.
            .with_replica_fault_plan(0, FaultPlan::seeded(9).with_drop(1.0));
        spec.cluster = two_machines();

        let reg = ModelRegistry::new();
        let handle = reg.register("dist", spec).unwrap();

        // Sequential requests spread across both replicas (all idle, so
        // p2c ties break by hash). Ones landing on replica 0 fail — until
        // its second consecutive failed step gets it evicted, after which
        // everything succeeds.
        let mut failures = 0u32;
        let mut successes = 0u32;
        let mut evicted_after: Option<u32> = None;
        for i in 0..40 {
            let feeds = feed_rows(1, i as f32 * 0.1);
            match handle.serve(Request::new(feeds)) {
                Ok(resp) => {
                    successes += 1;
                    assert_eq!(resp.outputs[0].shape().dims(), &[1, 4]);
                }
                Err(_) => failures += 1,
            }
            if evicted_after.is_none() && handle.metrics().evicted > 0 {
                evicted_after = Some(i);
            }
        }

        let m = handle.metrics();
        assert_eq!(m.evicted, 1, "the faulty replica must be evicted exactly once: {m:?}");
        assert_eq!(m.replicas.len(), 2, "eviction must replace, not shrink");
        assert!(
            m.replicas.iter().all(|r| r.id != 0),
            "replica 0 must be gone, replaced by a fresh id: {m:?}"
        );
        assert!(
            m.replicas.iter().all(|r| r.consecutive_step_failures == 0),
            "live replicas must be healthy: {m:?}"
        );
        let evicted_after = evicted_after.expect("eviction must happen during the run");
        assert!(failures >= 2, "the sick replica failed at least its eviction threshold");
        assert!(successes >= 20, "the model must keep serving throughout");
        // Once the sick replica is gone, nothing fails: total failures
        // are bounded by the requests issued before eviction.
        assert!(
            failures <= evicted_after + 1,
            "failures ({failures}) after eviction (at request {evicted_after})"
        );
        // The evicted replica's failed steps survive in the aggregate.
        assert!(m.aggregate.steps_failed >= 2, "retired counters must fold in: {m:?}");
        assert_eq!(m.aggregate.served, successes as u64);
    }
}
