//! Property-based tests of the graph optimizer: for arbitrary programs —
//! elementwise chains, duplicated subexpressions, nested while/cond
//! control flow, and mutable variable state — a session built with the
//! full optimization pipeline must produce *bit-identical* results to a
//! session built with optimization disabled.

use dcf::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// A randomized program exercising everything the optimizer rewrites.
#[derive(Clone, Debug)]
struct OptProgram {
    init: f32,
    scale: f32,
    offset: f32,
    /// Elementwise ops applied in sequence at the root (fusion fodder).
    chain: Vec<u8>,
    /// When true the chain is built twice from the same input (CSE
    /// fodder) and the two copies are summed.
    duplicate: bool,
    /// Loop trip count; the loop body contains its own elementwise chain.
    trips: i64,
    /// When true the loop body branches on iteration parity (nested cond).
    alternating: bool,
}

fn program_strategy() -> impl Strategy<Value = OptProgram> {
    (
        -2.0f32..2.0,
        -1.25f32..1.25,
        -2.0f32..2.0,
        proptest::collection::vec(0u8..5, 0..6),
        any::<bool>(),
        0i64..10,
        any::<bool>(),
    )
        .prop_map(|(init, scale, offset, chain, duplicate, trips, alternating)| OptProgram {
            init,
            scale,
            offset,
            chain,
            duplicate,
            trips,
            alternating,
        })
}

/// Builds the graph and returns the interesting fetch points: the root
/// chain output, the loop output, and a variable-update output.
fn build(p: &OptProgram) -> (dcf::graph::Graph, Vec<TensorRef>) {
    let mut g = GraphBuilder::new();
    let x0 = g.placeholder("x", DType::F32);
    let scale = g.scalar_f32(p.scale);
    let offset = g.scalar_f32(p.offset);

    let mut apply_chain = |g: &mut GraphBuilder, mut t: TensorRef| -> TensorRef {
        for op in &p.chain {
            t = match op {
                0 => g.mul(t, scale).unwrap(),
                1 => g.add(t, offset).unwrap(),
                2 => g.tanh(t).unwrap(),
                3 => g.relu(t).unwrap(),
                _ => g.neg(t).unwrap(),
            };
        }
        t
    };
    let chain_a = apply_chain(&mut g, x0);
    let root_out = if p.duplicate {
        let chain_b = apply_chain(&mut g, x0);
        g.add(chain_a, chain_b).unwrap()
    } else {
        chain_a
    };

    let i0 = g.scalar_i64(0);
    let lim = g.scalar_i64(p.trips);
    let alternating = p.alternating;
    let outs = g
        .while_loop(
            &[i0, root_out],
            |g, v| g.less(v[0], lim),
            |g, v| {
                let one = g.scalar_i64(1);
                // An in-body elementwise chain: fusable, but only within
                // the loop frame.
                let scaled = g.mul(v[1], scale)?;
                let shifted = g.add(scaled, offset)?;
                let squashed = g.tanh(shifted)?;
                let next = if alternating {
                    let half_c = g.scalar_f32(0.5);
                    let fi = g.cast(v[0], DType::F32)?;
                    let half = g.mul(fi, half_c)?;
                    let trunc = g.cast(half, DType::I64)?;
                    let back = g.cast(trunc, DType::F32)?;
                    let even = g.equal(half, back)?;
                    let stepped = g.cond(
                        even,
                        |g| Ok(vec![g.add(squashed, offset)?]),
                        |g| Ok(vec![g.sub(squashed, offset)?]),
                    )?;
                    stepped[0]
                } else {
                    squashed
                };
                Ok(vec![g.add(v[0], one)?, next])
            },
            WhileOptions::default(),
        )
        .unwrap();

    let w = g.variable("w", Tensor::scalar_f32(0.25));
    let upd = g.assign_add(w, outs[1]).unwrap();

    (g.finish().unwrap(), vec![root_out, outs[1], upd])
}

/// Runs two steps of the program under `opt` and returns every fetched
/// tensor from both steps (the second step observes the variable state
/// the first one wrote).
fn run(p: &OptProgram, opt: OptLevel) -> Vec<Tensor> {
    let (graph, fetches) = build(p);
    let sess = Session::new(
        graph,
        Cluster::single_cpu(),
        SessionOptions::functional().with_optimization(opt),
    )
    .unwrap();
    let mut feeds = HashMap::new();
    feeds.insert("x".to_string(), Tensor::scalar_f32(p.init));
    let mut out = sess.eval(&feeds, &fetches).unwrap();
    out.extend(sess.eval(&feeds, &fetches).unwrap());
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Optimized and unoptimized sessions agree bit-for-bit on every
    /// fetch — including accumulated `Variable` state — for arbitrary
    /// programs with chains, duplicates, and nested while/cond.
    #[test]
    fn optimization_preserves_results_exactly(p in program_strategy()) {
        let optimized = run(&p, OptLevel::Standard);
        let baseline = run(&p, OptLevel::None);
        prop_assert_eq!(optimized.len(), baseline.len());
        for (i, (a, b)) in optimized.iter().zip(&baseline).enumerate() {
            prop_assert!(
                a.value_eq(b),
                "fetch {i} diverged under optimization: {a:?} vs {b:?}"
            );
        }
    }
}
