//! A while-loop partitioned across machines (Figure 6).
//!
//! The loop predicate runs on machine 0; the body op runs on machine 1.
//! The partitioner inserts Send/Recv pairs for the data and rewrites
//! machine 1's partition with a control-loop state machine so it can
//! re-arm its Recvs each iteration — or quiesce — without a central
//! coordinator. The network simulator injects per-message latency, and the
//! kernel timeline shows the overlap.
//!
//! Run with: `cargo run --example distributed_loop`

use dcf::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new();
    cluster.add_device(0, DeviceProfile::cpu());
    cluster.add_device(1, DeviceProfile::cpu());

    let mut g = GraphBuilder::new();
    let i0 = g.scalar_i64(0);
    let x0 = g.scalar_f32(1.0);
    let lim = g.scalar_i64(50);
    let outs = g.while_loop(
        &[i0, x0],
        |g, v| g.less(v[0], lim),
        |g, v| {
            let one = g.scalar_i64(1);
            let i = g.add(v[0], one)?;
            // The compute hop lives on machine 1 (Figure 6's Op).
            let x = g.with_device("/machine:1/cpu:0", |g| {
                let c = g.scalar_f32(1.02);
                g.mul(v[1], c)
            })?;
            let x = g.with_device("/machine:0/cpu:0", |g| g.identity(x))?;
            Ok(vec![i, x])
        },
        WhileOptions::default(),
    )?;

    let options = SessionOptions {
        network: NetworkModel {
            cross_latency: std::time::Duration::from_micros(100),
            ..NetworkModel::default()
        },
        ..SessionOptions::functional()
    };
    let sess = Session::new(g.finish()?, cluster, options)?;

    // Inspect the partitioning: count communication and control-loop nodes.
    let pg = sess.partitioned();
    let sends = pg.graph.nodes().iter().filter(|n| n.op.name() == "Send").count();
    let recvs = pg.graph.nodes().iter().filter(|n| n.op.name() == "Recv").count();
    let ctl = pg.graph.nodes().iter().filter(|n| n.name.starts_with("Ctl")).count();
    println!("partitioned graph: {sends} Sends, {recvs} Recvs, {ctl} control-loop nodes");
    for (d, members) in pg.members.iter().enumerate() {
        println!("  device {d}: {} nodes", members.len());
    }

    let t0 = Instant::now();
    let out = sess.eval(&HashMap::new(), &outs)?;
    let wall = t0.elapsed();
    println!(
        "50 distributed iterations -> i = {}, x = {:.4} in {wall:?} ({:.0} iterations/s, \
         every iteration pays two cross-machine hops)",
        out[0].scalar_as_i64()?,
        out[1].scalar_as_f32()?,
        50.0 / wall.as_secs_f64()
    );
    Ok(())
}
