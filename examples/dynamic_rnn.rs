//! Train an LSTM over variable-length sequences with `dynamic_rnn`.
//!
//! Builds the paper's §6.2 workload at laptop scale: a single-layer LSTM
//! driven by an in-graph `while_loop` over TensorArrays, trained end-to-end
//! (the gradient is another in-graph loop running in reverse), and checks
//! it against static unrolling.
//!
//! Run with: `cargo run --example dynamic_rnn`

use dcf::ml::{dynamic_rnn, static_rnn, LstmCell};
use dcf::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (seq, batch, input, hidden) = (12usize, 4usize, 3usize, 8usize);
    let mut rng = TensorRng::new(42);
    let xs = rng.uniform(&[seq, batch, input], -1.0, 1.0);

    // Target: the sum of each sequence's inputs (a memorization task).
    let mut g = GraphBuilder::new();
    let mut wrng = TensorRng::new(7);
    let cell = LstmCell::new(&mut g, "lstm", input, hidden, &mut wrng);
    let w_out = g.variable("w_out", wrng.uniform(&[hidden, 1], -0.5, 0.5));
    let x = g.constant(xs.clone());
    let h0 = g.constant(Tensor::zeros(DType::F32, &[batch, hidden]));
    let c0 = g.constant(Tensor::zeros(DType::F32, &[batch, hidden]));

    let rnn = dynamic_rnn(&mut g, &cell, x, h0, c0, WhileOptions::default())?;
    let pred = g.matmul(rnn.h, w_out)?;
    let target = g.reduce_sum_axis(x, 0, false)?; // [batch, input]
    let target = g.reduce_sum_axis(target, 1, true)?; // [batch, 1]
    let diff = g.sub(pred, target)?;
    let sq = g.square(diff)?;
    let loss = g.reduce_mean(sq)?;
    let mut params = cell.params();
    params.push(w_out);
    let updates = dcf::ml::sgd_step(&mut g, loss, &params, 0.05)?;

    // A statically unrolled twin for a value check.
    let srnn = static_rnn(&mut g, &cell, x, h0, c0, seq)?;

    let sess = Session::local(g.finish()?)?;
    let out = sess.eval(&HashMap::new(), &[rnn.outputs, srnn.outputs])?;
    assert!(out[0].allclose(&out[1], 1e-4), "dynamic and static RNN outputs must match");
    println!("dynamic_rnn output [T,B,H] = {:?} matches static unrolling", out[0].shape().dims());

    let mut fetches = vec![loss];
    fetches.extend(&updates);
    for step in 0..40 {
        let out = sess.eval(&HashMap::new(), &fetches)?;
        if step % 10 == 0 {
            println!("step {step:>3}: loss = {:.5}", out[0].scalar_as_f32()?);
        }
    }
    let out = sess.eval(&HashMap::new(), &fetches)?;
    println!("final loss = {:.5}", out[0].scalar_as_f32()?);
    Ok(())
}
