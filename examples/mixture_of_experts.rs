//! A mixture-of-experts layer distributed across simulated devices (§2.2).
//!
//! The gating network picks one expert per batch; the experts live on
//! different simulated machines and execute under in-graph conditionals,
//! so the untaken experts' partitions receive dead signals instead of
//! computing (§4.4's distributed conditional execution).
//!
//! Run with: `cargo run --example mixture_of_experts`

use dcf::ml::MoeLayer;
use dcf::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three machines, one CPU each; one expert per machine.
    let mut cluster = Cluster::new();
    for m in 0..3 {
        cluster.add_device(m, DeviceProfile::cpu());
    }

    let mut g = GraphBuilder::new();
    let mut rng = TensorRng::new(21);
    let moe = MoeLayer::new(
        &mut g,
        "moe",
        4,
        16,
        2,
        vec![
            Some("/machine:0/cpu:0".into()),
            Some("/machine:1/cpu:0".into()),
            Some("/machine:2/cpu:0".into()),
        ],
        &mut rng,
    );
    let x = g.placeholder_shaped("x", DType::F32, &[8, 4]);
    let y = moe.apply(&mut g, x)?;
    let sq = g.square(y)?;
    let loss = g.reduce_mean(sq)?;
    let updates = dcf::ml::sgd_step(&mut g, loss, &moe.params(), 0.1)?;

    let sess = Session::new(g.finish()?, cluster, SessionOptions::functional())?;
    let mut data_rng = TensorRng::new(5);
    let mut fetches = vec![y, loss];
    fetches.extend(&updates);
    for step in 0..5 {
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), data_rng.uniform(&[8, 4], -1.0, 1.0));
        let out = sess.eval(&feeds, &fetches)?;
        println!(
            "step {step}: loss = {:.5}, output shape = {:?} (one expert executed, two dead)",
            out[1].scalar_as_f32()?,
            out[0].shape().dims()
        );
    }
    println!("experts were placed on three machines; dead signals silence the losers");
    Ok(())
}
