//! An in-graph training loop (§2.2 "Other usage").
//!
//! Normally the training loop lives in the host program, paying one
//! client dispatch per step. Here the *entire* loop — forward pass, the
//! gradient computed manually from the closed form, and the parameter
//! update — runs inside a single `while_loop`, so one `Session::run`
//! performs N optimization steps with zero intermediate client round
//! trips: the pattern the paper describes for coordinator-free workers.
//!
//! The model is linear regression fit by gradient descent; the loop runs
//! until the loss drops below a threshold (a data-dependent trip count).
//!
//! Run with: `cargo run --example in_graph_training_loop`

use dcf::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = TensorRng::new(4);
    let n = 32usize;

    let mut g = GraphBuilder::new();
    let x = g.constant(rng.uniform(&[n, 2], -1.0, 1.0));
    let w_true = g.constant(Tensor::from_vec_f32(vec![1.5, -0.75], &[2, 1])?);
    let y_true = g.matmul(x, w_true)?;

    // Loop variables: step counter and the weights themselves.
    let w0 = g.constant(Tensor::zeros(DType::F32, &[2, 1]));
    let steps0 = g.scalar_i64(0);
    let tolerance = g.scalar_f32(1e-5);
    let max_steps = g.scalar_i64(500);
    let lr = g.scalar_f32(0.4);
    let two_over_n = g.scalar_f32(2.0 / n as f32);

    let outs = g.while_loop(
        &[steps0, w0],
        |g, v| {
            // Continue while loss > tolerance AND step budget remains.
            let pred_y = g.matmul(x, v[1])?;
            let err = g.sub(pred_y, y_true)?;
            let sq = g.square(err)?;
            let loss = g.reduce_mean(sq)?;
            let unconverged = g.greater(loss, tolerance)?;
            let in_budget = g.less(v[0], max_steps)?;
            g.logical_and(unconverged, in_budget)
        },
        |g, v| {
            // One gradient-descent step, fully in-graph:
            // grad = 2/N * X^T (Xw - y).
            let pred_y = g.matmul(x, v[1])?;
            let err = g.sub(pred_y, y_true)?;
            let xte = g.matmul_t(x, err, true, false)?;
            let grad = g.mul(xte, two_over_n)?;
            let delta = g.mul(grad, lr)?;
            let w_next = g.sub(v[1], delta)?;
            let one = g.scalar_i64(1);
            Ok(vec![g.add(v[0], one)?, w_next])
        },
        WhileOptions { name: Some("train".into()), ..Default::default() },
    )?;

    let sess = Session::local(g.finish()?)?;
    let out = sess.eval(&HashMap::new(), &outs)?;
    let steps = out[0].scalar_as_i64()?;
    let w = out[1].as_f32_slice()?.to_vec();
    println!("converged in {steps} in-graph steps (single Session::run)");
    println!("w = [{:.4}, {:.4}] (target [1.5, -0.75])", w[0], w[1]);
    assert!((w[0] - 1.5).abs() < 0.01 && (w[1] + 0.75).abs() < 0.01);
    println!("ok: the whole optimization ran inside the dataflow runtime");
    Ok(())
}
