//! Adaptive Computation Time: a nested, data-dependent while-loop (§2.2).
//!
//! Graves' ACT lets an RNN learn how many "pondering" micro-steps to take
//! per input timestep. Structurally that is a while-loop *nested inside*
//! the RNN's while-loop, with a data-dependent inner trip count — the
//! workload the paper cites as exercising distributed nested loops and
//! their automatic differentiation.
//!
//! This example builds a small ACT-style model: the outer loop walks the
//! sequence; the inner loop repeatedly refines the state until a learned
//! halting unit saturates (or a step cap is hit); and the whole thing is
//! differentiated end-to-end with `gradients`.
//!
//! Run with: `cargo run --example adaptive_computation_time`

use dcf::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (seq, dim) = (6usize, 4usize);
    let mut rng = TensorRng::new(9);

    let mut g = GraphBuilder::new();
    let w = g.variable("w", rng.uniform(&[dim, dim], -0.4, 0.4));
    let w_halt = g.variable("w_halt", rng.uniform(&[dim, 1], -0.4, 0.4));
    let xs = g.constant(rng.uniform(&[seq, 1, dim], -1.0, 1.0));
    let h_init = g.constant(Tensor::zeros(DType::F32, &[1, dim]));

    let seq_i = g.scalar_i64(seq as i64);
    let halt_threshold = g.scalar_f32(0.9);
    let max_ponder = g.scalar_i64(4);

    // Outer loop over timesteps; inner loop ponders until the halting unit
    // crosses the threshold. The inner trip count depends on the data.
    let t0 = g.scalar_i64(0);
    let ponder0 = g.scalar_i64(0);
    let halt_init = g.scalar_f32(0.0);
    let outs = g.while_loop(
        &[t0, h_init, ponder0, halt_init],
        |g, v| g.less(v[0], seq_i),
        |g, v| {
            let (t, h, total_ponder) = (v[0], v[1], v[2]);
            let x_t = g.index0(xs, t)?;
            let mixed = g.add(h, x_t)?;
            let p0 = g.scalar_i64(0);
            let halt0 = g.scalar_f32(0.0);
            let inner = g.while_loop(
                &[p0, mixed, halt0],
                |g, w_| {
                    let more = g.less(w_[0], max_ponder)?;
                    let unhalted = g.less(w_[2], halt_threshold)?;
                    g.logical_and(more, unhalted)
                },
                |g, w_| {
                    let (p, state, _halt) = (w_[0], w_[1], w_[2]);
                    let z = g.matmul(state, w)?;
                    let state1 = g.tanh(z)?;
                    let hscore = g.matmul(state1, w_halt)?;
                    let hsig = g.sigmoid(hscore)?;
                    let halt1 = g.reduce_mean(hsig)?;
                    let one = g.scalar_i64(1);
                    Ok(vec![g.add(p, one)?, state1, halt1])
                },
                WhileOptions { name: Some("ponder".into()), ..Default::default() },
            )?;
            let one = g.scalar_i64(1);
            let t1 = g.add(t, one)?;
            let ponder_sum = g.add(total_ponder, inner[0])?;
            Ok(vec![t1, inner[1], ponder_sum, inner[2]])
        },
        WhileOptions { name: Some("time".into()), ..Default::default() },
    )?;

    let final_h = outs[1];
    let total_ponder = outs[2];
    let final_halt = outs[3];
    let sq = g.square(final_h)?;
    let task_loss = g.reduce_mean(sq)?;
    // ACT's ponder cost: penalize halting late (here via the final halting
    // activation) so the halting unit itself receives gradients.
    let ponder_weight = g.scalar_f32(0.01);
    let one_f = g.scalar_f32(1.0);
    let slack = g.sub(one_f, final_halt)?;
    let ponder_cost = g.mul(slack, ponder_weight)?;
    let loss = g.add(task_loss, ponder_cost)?;
    let grads = dcf::autodiff::gradients(&mut g, loss, &[w, w_halt])?;

    let sess = Session::local(g.finish()?)?;
    let out = sess.eval(&HashMap::new(), &[loss, total_ponder, grads[0], grads[1]])?;
    println!("ACT over {seq} timesteps:");
    println!("  loss                 = {:.5}", out[0].scalar_as_f32()?);
    println!(
        "  total ponder steps   = {} (data-dependent, cap {} per step)",
        out[1].scalar_as_i64()?,
        4
    );
    let gw = out[2].as_f32_slice()?;
    let gh = out[3].as_f32_slice()?;
    println!(
        "  |grad w| = {:.5}, |grad w_halt| = {:.5} (backprop through nested dynamic loops)",
        gw.iter().map(|x| x * x).sum::<f32>().sqrt(),
        gh.iter().map(|x| x * x).sum::<f32>().sqrt(),
    );
    Ok(())
}
