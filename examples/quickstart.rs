//! Quickstart: in-graph control flow, automatic differentiation, and a
//! local session.
//!
//! Run with: `cargo run --example quickstart`

use dcf::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A conditional: |x| if x < 0 { -x } else { x^2 }.
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", DType::F32);
    let zero = g.scalar_f32(0.0);
    let is_neg = g.less(x, zero)?;
    let outs = g.cond(is_neg, |g| Ok(vec![g.neg(x)?]), |g| Ok(vec![g.square(x)?]))?;
    let y = outs[0];

    // 2. A loop: keep doubling y until it exceeds 100.
    let hundred = g.scalar_f32(100.0);
    let two = g.scalar_f32(2.0);
    let doubled = g.while_loop(
        &[y],
        |g, v| g.less(v[0], hundred),
        |g, v| Ok(vec![g.mul(v[0], two)?]),
        WhileOptions::default(),
    )?;
    let z = doubled[0];

    // 3. The gradient dz/dx flows through both constructs.
    let grads = gradients(&mut g, z, &[x])?;

    // 4. Run everything in one Session call.
    let sess = Session::local(g.finish()?)?;
    for xv in [-3.0f32, 0.5, 9.0] {
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), Tensor::scalar_f32(xv));
        let out = sess.eval(&feeds, &[y, z, grads[0]])?;
        println!(
            "x = {xv:>5}: branch output = {:>8.2}, loop output = {:>8.2}, dz/dx = {:>8.2}",
            out[0].scalar_as_f32()?,
            out[1].scalar_as_f32()?,
            out[2].scalar_as_f32()?,
        );
    }
    Ok(())
}
