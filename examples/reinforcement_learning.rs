//! Deep Q-Network with an in-graph experience database (§6.5, Figure 16).
//!
//! Runs the same DQN agent twice on a synthetic MDP: once with all steps
//! (database write, conditional Q-learning, conditional target sync,
//! ε-greedy action selection) fused into one dataflow graph invoked once
//! per interaction, and once with the client program driving each step as
//! a separate `Session::run` — the paper's out-of-graph baseline.
//!
//! Run with: `cargo run --release --example reinforcement_learning`

use dcf::ml::dqn::{DqnConfig, InGraphDqn, MdpEnv, OutOfGraphDqn, Transition};
use dcf::prelude::*;
use std::time::Instant;

const STEPS: usize = 400;

fn drive(mut stepper: impl FnMut(&Transition, &[f32], f32) -> (usize, f32)) -> (f32, f32) {
    let mut env = MdpEnv::new(4, 3, 42);
    let mut state = env.state();
    let mut action = 0usize;
    let mut early = 0.0f32;
    let mut late = 0.0f32;
    for i in 0..STEPS {
        let (next, reward) = env.step(action);
        if i < STEPS / 4 {
            early += reward;
        }
        if i >= 3 * STEPS / 4 {
            late += reward;
        }
        let prev = Transition { state: state.clone(), action, reward, next_state: next.clone() };
        let eps = (1.0 - i as f32 / (STEPS as f32 * 0.6)).max(0.05);
        let (a, _) = stepper(&prev, &next, eps);
        state = next;
        action = a;
    }
    (early / (STEPS / 4) as f32, late / (STEPS / 4) as f32)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Model the paper's client/runtime separation: every Session::run pays
    // a dispatch round-trip (RPC + client-language overhead). The in-graph
    // agent needs exactly one per interaction; the baseline needs one per
    // client-driven step.
    let cfg = DqnConfig { dispatch: std::time::Duration::from_millis(2), ..DqnConfig::default() };

    println!("== in-graph DQN (single fused graph per interaction) ==");
    let mut in_graph =
        InGraphDqn::new(cfg.clone(), Cluster::single_cpu(), SessionOptions::functional())?;
    let t0 = Instant::now();
    let (early, late) = drive(|p, c, e| in_graph.step(p, c, e).expect("in-graph step"));
    let in_time = t0.elapsed();
    println!("  avg reward: first quarter {early:.4} -> last quarter {late:.4}");
    println!("  wall time for {STEPS} interactions: {in_time:?}");

    println!("== out-of-graph DQN (client-driven conditionals) ==");
    let mut out_graph = OutOfGraphDqn::new(cfg, Cluster::single_cpu, SessionOptions::functional())?;
    let t0 = Instant::now();
    let (early, late) = drive(|p, c, e| out_graph.step(p, c, e).expect("out-of-graph step"));
    let out_time = t0.elapsed();
    println!("  avg reward: first quarter {early:.4} -> last quarter {late:.4}");
    println!("  wall time for {STEPS} interactions: {out_time:?}");

    let speedup = out_time.as_secs_f64() / in_time.as_secs_f64();
    println!("in-graph speedup over out-of-graph: {speedup:.2}x (paper reports 1.21x)");
    Ok(())
}
